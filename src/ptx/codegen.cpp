#include "ptx/codegen.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "cnn/static_analyzer.hpp"
#include "ptx/parser.hpp"

namespace gpuperf::ptx {

namespace {

// ---- operand shorthands ----

Operand R(const std::string& name) { return RegOperand{name}; }
Operand I(std::int64_t v) {
  return ImmOperand{static_cast<double>(v), false};
}
Operand F(double v) { return ImmOperand{v, true}; }
Operand M(const std::string& base, std::int64_t off = 0) {
  return MemOperand{base, off};
}
Operand L(const std::string& name) { return LabelOperand{name}; }
Operand SR(SpecialReg r) { return SpecialOperand{r}; }

/// Incremental kernel builder with fresh-register allocation.
class Kb {
 public:
  Kb(std::string name, int block_dim) {
    k_.name = std::move(name);
    k_.reqntid = block_dim;
  }

  void param(const std::string& name, PtxType type) {
    k_.params.push_back(
        KernelParam{name, type, type == PtxType::kU64});
  }

  std::string r() { return "%r" + std::to_string(next_r_++); }   // 32-bit
  std::string rd() { return "%rd" + std::to_string(next_rd_++); }  // 64-bit
  std::string f() { return "%f" + std::to_string(next_f_++); }   // f32
  std::string p() { return "%p" + std::to_string(next_p_++); }   // pred

  void label(const std::string& name) {
    k_.labels[name] = k_.instructions.size();
  }

  void shared(std::int64_t bytes) { k_.shared_bytes = bytes; }

  Instruction& emit(Opcode op, PtxType type, std::vector<Operand> dsts,
                    std::vector<Operand> srcs,
                    StateSpace space = StateSpace::kNone) {
    Instruction inst;
    inst.opcode = op;
    inst.type = type;
    inst.space = space;
    inst.dsts = std::move(dsts);
    inst.srcs = std::move(srcs);
    k_.instructions.push_back(std::move(inst));
    return k_.instructions.back();
  }

  // -- common idioms --

  std::string mov_u32(Operand src) {
    std::string dst = r();
    emit(Opcode::kMov, PtxType::kU32, {R(dst)}, {std::move(src)});
    return dst;
  }

  std::string ld_param_u32(const std::string& pname) {
    std::string dst = r();
    emit(Opcode::kLd, PtxType::kU32, {R(dst)}, {M(pname)},
         StateSpace::kParam);
    return dst;
  }

  std::string ld_param_ptr(const std::string& pname) {
    std::string raw = rd();
    emit(Opcode::kLd, PtxType::kU64, {R(raw)}, {M(pname)},
         StateSpace::kParam);
    std::string dst = rd();
    emit(Opcode::kCvta, PtxType::kU64, {R(dst)}, {R(raw)});
    return dst;
  }

  /// gid = ctaid.x * ntid.x + tid.x
  std::string gid() {
    std::string ct = mov_u32(SR(SpecialReg::kCtaidX));
    std::string nt = mov_u32(SR(SpecialReg::kNtidX));
    std::string t = mov_u32(SR(SpecialReg::kTidX));
    std::string g = r();
    emit(Opcode::kMad, PtxType::kS32, {R(g)}, {R(ct), R(nt), R(t)});
    return g;
  }

  /// stride = nctaid.x * ntid.x (grid-stride loops)
  std::string grid_stride() {
    std::string nc = mov_u32(SR(SpecialReg::kNctaidX));
    std::string nt = mov_u32(SR(SpecialReg::kNtidX));
    std::string s = r();
    emit(Opcode::kMulLo, PtxType::kS32, {R(s)}, {R(nc), R(nt)});
    return s;
  }

  /// addr = base + idx * 4 (f32 element address)
  std::string elem_addr(const std::string& base, const std::string& idx) {
    std::string off = rd();
    emit(Opcode::kMulWide, PtxType::kS32, {R(off)}, {R(idx), I(4)});
    std::string addr = rd();
    emit(Opcode::kAdd, PtxType::kU64, {R(addr)}, {R(base), R(off)});
    return addr;
  }

  std::string ld_global_f32(const std::string& addr) {
    std::string dst = f();
    emit(Opcode::kLd, PtxType::kF32, {R(dst)}, {M(addr)},
         StateSpace::kGlobal);
    return dst;
  }

  void st_global_f32(const std::string& addr, const std::string& val) {
    emit(Opcode::kSt, PtxType::kF32, {}, {M(addr), R(val)},
         StateSpace::kGlobal);
  }

  /// setp dst, a `cmp` b
  std::string setp(CompareOp cmp, PtxType type, Operand a, Operand b) {
    std::string dst = p();
    auto& inst = emit(Opcode::kSetp, type, {R(dst)},
                      {std::move(a), std::move(b)});
    inst.cmp = cmp;
    return dst;
  }

  void guarded_bra(const std::string& pred, bool negated,
                   const std::string& target) {
    auto& inst = emit(Opcode::kBra, PtxType::kU32, {}, {L(target)});
    inst.guard = pred;
    inst.guard_negated = negated;
  }

  void bra(const std::string& target) {
    emit(Opcode::kBra, PtxType::kU32, {}, {L(target)});
  }

  void bar() { emit(Opcode::kBar, PtxType::kU32, {}, {}); }

  void ret() { emit(Opcode::kRet, PtxType::kU32, {}, {}); }

  PtxKernel finish() {
    // Register declarations summarize what was allocated.
    auto decl = [&](PtxType t, const char* prefix, int n) {
      if (n > 1) k_.reg_decls.push_back(RegDecl{t, prefix, n});
    };
    decl(PtxType::kPred, "%p", next_p_);
    decl(PtxType::kF32, "%f", next_f_);
    decl(PtxType::kU32, "%r", next_r_);
    decl(PtxType::kU64, "%rd", next_rd_);
    k_.intern_registers();
    return std::move(k_);
  }

 private:
  PtxKernel k_;
  int next_r_ = 1, next_rd_ = 1, next_f_ = 1, next_p_ = 1;
};

constexpr int kBlock = CodeGenerator::kBlockDim;
constexpr int kTile = CodeGenerator::kGemmTile;

// ---- kernel emitters ----

/// Grid-stride elementwise skeleton; `body` maps the loaded value
/// register to the value register to store.
template <typename Body>
PtxKernel elementwise_kernel(const std::string& name, int n_inputs,
                             Body&& body) {
  Kb b(name, kBlock);
  b.param("p_dst", PtxType::kU64);
  b.param("p_a", PtxType::kU64);
  if (n_inputs > 1) b.param("p_b", PtxType::kU64);
  b.param("p_n", PtxType::kU32);

  std::string i = b.gid();
  std::string n = b.ld_param_u32("p_n");
  std::string a = b.ld_param_ptr("p_a");
  std::string b2 = n_inputs > 1 ? b.ld_param_ptr("p_b") : std::string();
  std::string dst = b.ld_param_ptr("p_dst");
  std::string stride = b.grid_stride();

  std::string done = b.setp(CompareOp::kGe, PtxType::kS32, R(i), R(n));
  b.guarded_bra(done, false, "EXIT");
  b.label("LOOP");
  std::string addr_a = b.elem_addr(a, i);
  std::string va = b.ld_global_f32(addr_a);
  std::string vb;
  if (n_inputs > 1) {
    std::string addr_b = b.elem_addr(b2, i);
    vb = b.ld_global_f32(addr_b);
  }
  std::string out = body(b, va, vb, i);
  std::string addr_d = b.elem_addr(dst, i);
  b.st_global_f32(addr_d, out);
  b.emit(Opcode::kAdd, PtxType::kS32, {R(i)}, {R(i), R(stride)});
  std::string more = b.setp(CompareOp::kLt, PtxType::kS32, R(i), R(n));
  b.guarded_bra(more, false, "LOOP");
  b.label("EXIT");
  b.ret();
  return b.finish();
}

/// exp(x) lowered as ex2(x * log2(e)) — the nvcc fast-math idiom.
std::string emit_exp(Kb& b, const std::string& x) {
  std::string scaled = b.f();
  b.emit(Opcode::kMul, PtxType::kF32, {R(scaled)},
         {R(x), F(1.4426950408889634)});
  std::string e = b.f();
  b.emit(Opcode::kEx2, PtxType::kF32, {R(e)}, {R(scaled)});
  return e;
}

/// sigmoid(x) = 1 / (1 + exp(-x))
std::string emit_sigmoid(Kb& b, const std::string& x) {
  std::string nx = b.f();
  b.emit(Opcode::kNeg, PtxType::kF32, {R(nx)}, {R(x)});
  std::string e = emit_exp(b, nx);
  std::string denom = b.f();
  b.emit(Opcode::kAdd, PtxType::kF32, {R(denom)}, {R(e), F(1.0)});
  std::string out = b.f();
  b.emit(Opcode::kRcp, PtxType::kF32, {R(out)}, {R(denom)});
  return out;
}

PtxKernel k_copy() {
  return elementwise_kernel(
      "gp_copy", 1,
      [](Kb&, const std::string& v, const std::string&, const std::string&) {
        return v;
      });
}

PtxKernel k_relu() {
  return elementwise_kernel(
      "gp_relu", 1,
      [](Kb& b, const std::string& v, const std::string&,
         const std::string&) {
        std::string out = b.f();
        b.emit(Opcode::kMax, PtxType::kF32, {R(out)}, {R(v), F(0.0)});
        return out;
      });
}

PtxKernel k_relu6() {
  return elementwise_kernel(
      "gp_relu6", 1,
      [](Kb& b, const std::string& v, const std::string&,
         const std::string&) {
        std::string lo = b.f();
        b.emit(Opcode::kMax, PtxType::kF32, {R(lo)}, {R(v), F(0.0)});
        std::string out = b.f();
        b.emit(Opcode::kMin, PtxType::kF32, {R(out)}, {R(lo), F(6.0)});
        return out;
      });
}

PtxKernel k_sigmoid() {
  return elementwise_kernel(
      "gp_sigmoid", 1,
      [](Kb& b, const std::string& v, const std::string&,
         const std::string&) { return emit_sigmoid(b, v); });
}

PtxKernel k_swish() {
  return elementwise_kernel(
      "gp_swish", 1,
      [](Kb& b, const std::string& v, const std::string&,
         const std::string&) {
        std::string s = emit_sigmoid(b, v);
        std::string out = b.f();
        b.emit(Opcode::kMul, PtxType::kF32, {R(out)}, {R(v), R(s)});
        return out;
      });
}

PtxKernel k_tanh() {
  return elementwise_kernel(
      "gp_tanh", 1,
      [](Kb& b, const std::string& v, const std::string&,
         const std::string&) {
        // tanh(x) = 2 sigmoid(2x) - 1
        std::string x2 = b.f();
        b.emit(Opcode::kMul, PtxType::kF32, {R(x2)}, {R(v), F(2.0)});
        std::string s = emit_sigmoid(b, x2);
        std::string s2 = b.f();
        b.emit(Opcode::kMul, PtxType::kF32, {R(s2)}, {R(s), F(2.0)});
        std::string out = b.f();
        b.emit(Opcode::kSub, PtxType::kF32, {R(out)}, {R(s2), F(1.0)});
        return out;
      });
}

PtxKernel k_add() {
  return elementwise_kernel(
      "gp_add", 2,
      [](Kb& b, const std::string& va, const std::string& vb,
         const std::string&) {
        std::string out = b.f();
        b.emit(Opcode::kAdd, PtxType::kF32, {R(out)}, {R(va), R(vb)});
        return out;
      });
}

PtxKernel k_mul() {
  return elementwise_kernel(
      "gp_mul", 2,
      [](Kb& b, const std::string& va, const std::string& vb,
         const std::string&) {
        std::string out = b.f();
        b.emit(Opcode::kMul, PtxType::kF32, {R(out)}, {R(va), R(vb)});
        return out;
      });
}

/// Inference batch norm: y = x * scale[c] + shift[c], c = i mod C.
PtxKernel k_bn() {
  Kb b("gp_bn", kBlock);
  b.param("p_dst", PtxType::kU64);
  b.param("p_a", PtxType::kU64);
  b.param("p_scale", PtxType::kU64);
  b.param("p_shift", PtxType::kU64);
  b.param("p_n", PtxType::kU32);
  b.param("p_c", PtxType::kU32);

  std::string i = b.gid();
  std::string n = b.ld_param_u32("p_n");
  std::string c = b.ld_param_u32("p_c");
  std::string a = b.ld_param_ptr("p_a");
  std::string scale = b.ld_param_ptr("p_scale");
  std::string shift = b.ld_param_ptr("p_shift");
  std::string dst = b.ld_param_ptr("p_dst");
  std::string stride = b.grid_stride();

  std::string done = b.setp(CompareOp::kGe, PtxType::kS32, R(i), R(n));
  b.guarded_bra(done, false, "EXIT");
  b.label("LOOP");
  std::string ch = b.r();
  b.emit(Opcode::kRem, PtxType::kS32, {R(ch)}, {R(i), R(c)});
  std::string x = b.ld_global_f32(b.elem_addr(a, i));
  std::string sc = b.ld_global_f32(b.elem_addr(scale, ch));
  std::string sh = b.ld_global_f32(b.elem_addr(shift, ch));
  std::string y = b.f();
  b.emit(Opcode::kFma, PtxType::kF32, {R(y)}, {R(x), R(sc), R(sh)});
  b.st_global_f32(b.elem_addr(dst, i), y);
  b.emit(Opcode::kAdd, PtxType::kS32, {R(i)}, {R(i), R(stride)});
  std::string more = b.setp(CompareOp::kLt, PtxType::kS32, R(i), R(n));
  b.guarded_bra(more, false, "LOOP");
  b.label("EXIT");
  b.ret();
  return b.finish();
}

/// Channel-broadcast multiply (squeeze-excite): y = x * se[i mod C].
PtxKernel k_mul_bcast() {
  Kb b("gp_mul_bcast", kBlock);
  b.param("p_dst", PtxType::kU64);
  b.param("p_a", PtxType::kU64);
  b.param("p_se", PtxType::kU64);
  b.param("p_n", PtxType::kU32);
  b.param("p_c", PtxType::kU32);

  std::string i = b.gid();
  std::string n = b.ld_param_u32("p_n");
  std::string c = b.ld_param_u32("p_c");
  std::string a = b.ld_param_ptr("p_a");
  std::string se = b.ld_param_ptr("p_se");
  std::string dst = b.ld_param_ptr("p_dst");
  std::string stride = b.grid_stride();

  std::string done = b.setp(CompareOp::kGe, PtxType::kS32, R(i), R(n));
  b.guarded_bra(done, false, "EXIT");
  b.label("LOOP");
  std::string ch = b.r();
  b.emit(Opcode::kRem, PtxType::kS32, {R(ch)}, {R(i), R(c)});
  std::string x = b.ld_global_f32(b.elem_addr(a, i));
  std::string s = b.ld_global_f32(b.elem_addr(se, ch));
  std::string y = b.f();
  b.emit(Opcode::kMul, PtxType::kF32, {R(y)}, {R(x), R(s)});
  b.st_global_f32(b.elem_addr(dst, i), y);
  b.emit(Opcode::kAdd, PtxType::kS32, {R(i)}, {R(i), R(stride)});
  std::string more = b.setp(CompareOp::kLt, PtxType::kS32, R(i), R(n));
  b.guarded_bra(more, false, "LOOP");
  b.label("EXIT");
  b.ret();
  return b.finish();
}

/// im2col: one thread per output patch, loop over the window gathering
/// into the column matrix.
PtxKernel k_im2col() {
  Kb b("gp_im2col", kBlock);
  b.param("p_col", PtxType::kU64);
  b.param("p_src", PtxType::kU64);
  b.param("p_patches", PtxType::kU32);
  b.param("p_window", PtxType::kU32);

  std::string i = b.gid();
  std::string patches = b.ld_param_u32("p_patches");
  std::string window = b.ld_param_u32("p_window");
  std::string col = b.ld_param_ptr("p_col");
  std::string src = b.ld_param_ptr("p_src");

  std::string skip = b.setp(CompareOp::kGe, PtxType::kS32, R(i), R(patches));
  b.guarded_bra(skip, false, "EXIT");

  std::string w = b.mov_u32(I(0));
  // Column-matrix base index for this patch: i * window.
  std::string out_base = b.r();
  b.emit(Opcode::kMulLo, PtxType::kS32, {R(out_base)}, {R(i), R(window)});

  b.label("WLOOP");
  // Gather address: src_idx = w * patches + i (transposed layout walk).
  std::string src_idx = b.r();
  b.emit(Opcode::kMad, PtxType::kS32, {R(src_idx)}, {R(w), R(patches), R(i)});
  std::string v = b.ld_global_f32(b.elem_addr(src, src_idx));
  std::string out_idx = b.r();
  b.emit(Opcode::kAdd, PtxType::kS32, {R(out_idx)}, {R(out_base), R(w)});
  b.st_global_f32(b.elem_addr(col, out_idx), v);
  b.emit(Opcode::kAdd, PtxType::kS32, {R(w)}, {R(w), I(1)});
  std::string more = b.setp(CompareOp::kLt, PtxType::kS32, R(w), R(window));
  b.guarded_bra(more, false, "WLOOP");
  b.label("EXIT");
  b.ret();
  return b.finish();
}

/// Shared-memory tiled GEMM + bias epilogue.  One thread per output
/// element; K is pre-padded to a multiple of the tile so the tile loop
/// carries no boundary branches (all threads iterate for bar.sync).
PtxKernel k_gemm() {
  Kb b("gp_gemm", kBlock);
  b.param("p_c", PtxType::kU64);
  b.param("p_a", PtxType::kU64);
  b.param("p_b", PtxType::kU64);
  b.param("p_bias", PtxType::kU64);
  b.param("p_total", PtxType::kU32);  // M * N
  b.param("p_n", PtxType::kU32);      // N
  b.param("p_kt", PtxType::kU32);     // K / kTile
  b.shared(2 * kTile * kBlock / kTile * 4);  // two tiles of f32

  std::string gid = b.gid();
  std::string total = b.ld_param_u32("p_total");
  std::string n = b.ld_param_u32("p_n");
  std::string kt = b.ld_param_u32("p_kt");
  std::string a = b.ld_param_ptr("p_a");
  std::string bm = b.ld_param_ptr("p_b");
  std::string bias = b.ld_param_ptr("p_bias");
  std::string cm = b.ld_param_ptr("p_c");

  // Tile coordinates (feed only shared-memory addresses).
  std::string tid = b.mov_u32(SR(SpecialReg::kTidX));
  std::string tx = b.r();
  b.emit(Opcode::kRem, PtxType::kS32, {R(tx)}, {R(tid), I(kTile)});
  std::string ty = b.r();
  b.emit(Opcode::kDiv, PtxType::kS32, {R(ty)}, {R(tid), I(kTile)});

  std::string acc = b.f();
  b.emit(Opcode::kMov, PtxType::kF32, {R(acc)}, {F(0.0)});

  std::string t = b.mov_u32(I(0));
  std::string no_tiles =
      b.setp(CompareOp::kLe, PtxType::kS32, R(kt), I(0));
  b.guarded_bra(no_tiles, false, "AFTER");

  b.label("KLOOP");
  {
    // Stage one A element and one B element into shared memory.
    std::string a_idx = b.r();
    b.emit(Opcode::kMad, PtxType::kS32, {R(a_idx)}, {R(t), I(kTile), R(gid)});
    std::string va = b.ld_global_f32(b.elem_addr(a, a_idx));
    std::string sa = b.rd();
    b.emit(Opcode::kMulWide, PtxType::kS32, {R(sa)}, {R(tid), I(4)});
    b.emit(Opcode::kSt, PtxType::kF32, {}, {M(sa), R(va)},
           StateSpace::kShared);

    std::string b_idx = b.r();
    b.emit(Opcode::kMad, PtxType::kS32, {R(b_idx)}, {R(t), R(n), R(gid)});
    std::string vb = b.ld_global_f32(b.elem_addr(bm, b_idx));
    std::string sb32 = b.r();
    b.emit(Opcode::kMad, PtxType::kS32, {R(sb32)},
           {R(tid), I(4), I(kBlock * 4)});
    std::string sb = b.rd();
    b.emit(Opcode::kCvt, PtxType::kU64, {R(sb)}, {R(sb32)});
    b.emit(Opcode::kSt, PtxType::kF32, {}, {M(sb), R(vb)},
           StateSpace::kShared);
    b.bar();

    // Inner product over the staged tile.
    std::string j = b.mov_u32(I(0));
    b.label("JLOOP");
    std::string ja32 = b.r();
    b.emit(Opcode::kMad, PtxType::kS32, {R(ja32)},
           {R(j), I(4 * kTile), R(ty)});
    std::string ja = b.rd();
    b.emit(Opcode::kCvt, PtxType::kU64, {R(ja)}, {R(ja32)});
    std::string fa = b.f();
    b.emit(Opcode::kLd, PtxType::kF32, {R(fa)}, {M(ja)},
           StateSpace::kShared);
    std::string jb32 = b.r();
    b.emit(Opcode::kMad, PtxType::kS32, {R(jb32)},
           {R(j), I(4 * kTile), R(tx)});
    std::string jb = b.rd();
    b.emit(Opcode::kCvt, PtxType::kU64, {R(jb)}, {R(jb32)});
    std::string fb = b.f();
    b.emit(Opcode::kLd, PtxType::kF32, {R(fb)}, {M(jb)},
           StateSpace::kShared);
    b.emit(Opcode::kFma, PtxType::kF32, {R(acc)}, {R(fa), R(fb), R(acc)});
    b.emit(Opcode::kAdd, PtxType::kS32, {R(j)}, {R(j), I(1)});
    std::string jmore = b.setp(CompareOp::kLt, PtxType::kS32, R(j), I(kTile));
    b.guarded_bra(jmore, false, "JLOOP");
    b.bar();

    b.emit(Opcode::kAdd, PtxType::kS32, {R(t)}, {R(t), I(1)});
    std::string tmore = b.setp(CompareOp::kLt, PtxType::kS32, R(t), R(kt));
    b.guarded_bra(tmore, false, "KLOOP");
  }

  b.label("AFTER");
  std::string oob = b.setp(CompareOp::kGe, PtxType::kS32, R(gid), R(total));
  b.guarded_bra(oob, false, "EXIT");
  std::string colv = b.r();
  b.emit(Opcode::kRem, PtxType::kS32, {R(colv)}, {R(gid), R(n)});
  std::string bv = b.ld_global_f32(b.elem_addr(bias, colv));
  std::string out = b.f();
  b.emit(Opcode::kAdd, PtxType::kF32, {R(out)}, {R(acc), R(bv)});
  b.st_global_f32(b.elem_addr(cm, gid), out);
  b.label("EXIT");
  b.ret();
  return b.finish();
}

/// Direct depthwise convolution / correlation: one thread per output
/// element, loop over the window with a weight load per tap.
PtxKernel k_dwconv() {
  Kb b("gp_dwconv", kBlock);
  b.param("p_dst", PtxType::kU64);
  b.param("p_src", PtxType::kU64);
  b.param("p_w", PtxType::kU64);
  b.param("p_out", PtxType::kU32);
  b.param("p_window", PtxType::kU32);

  std::string i = b.gid();
  std::string out_n = b.ld_param_u32("p_out");
  std::string window = b.ld_param_u32("p_window");
  std::string src = b.ld_param_ptr("p_src");
  std::string wgt = b.ld_param_ptr("p_w");
  std::string dst = b.ld_param_ptr("p_dst");

  std::string skip = b.setp(CompareOp::kGe, PtxType::kS32, R(i), R(out_n));
  b.guarded_bra(skip, false, "EXIT");

  std::string acc = b.f();
  b.emit(Opcode::kMov, PtxType::kF32, {R(acc)}, {F(0.0)});
  std::string w = b.mov_u32(I(0));
  b.label("WLOOP");
  std::string s_idx = b.r();
  b.emit(Opcode::kMad, PtxType::kS32, {R(s_idx)}, {R(w), R(out_n), R(i)});
  std::string sv = b.ld_global_f32(b.elem_addr(src, s_idx));
  std::string wv = b.ld_global_f32(b.elem_addr(wgt, w));
  b.emit(Opcode::kFma, PtxType::kF32, {R(acc)}, {R(sv), R(wv), R(acc)});
  b.emit(Opcode::kAdd, PtxType::kS32, {R(w)}, {R(w), I(1)});
  std::string more = b.setp(CompareOp::kLt, PtxType::kS32, R(w), R(window));
  b.guarded_bra(more, false, "WLOOP");

  b.st_global_f32(b.elem_addr(dst, i), acc);
  b.label("EXIT");
  b.ret();
  return b.finish();
}

/// Window pooling; max selects, avg accumulates then scales by the
/// reciprocal window size.
PtxKernel k_pool(const std::string& name, bool is_max) {
  Kb b(name, kBlock);
  b.param("p_dst", PtxType::kU64);
  b.param("p_src", PtxType::kU64);
  b.param("p_out", PtxType::kU32);
  b.param("p_window", PtxType::kU32);

  std::string i = b.gid();
  std::string out_n = b.ld_param_u32("p_out");
  std::string window = b.ld_param_u32("p_window");
  std::string src = b.ld_param_ptr("p_src");
  std::string dst = b.ld_param_ptr("p_dst");

  std::string skip = b.setp(CompareOp::kGe, PtxType::kS32, R(i), R(out_n));
  b.guarded_bra(skip, false, "EXIT");

  std::string acc = b.f();
  b.emit(Opcode::kMov, PtxType::kF32, {R(acc)},
         {is_max ? F(-3.4e38) : F(0.0)});
  std::string w = b.mov_u32(I(0));
  b.label("WLOOP");
  std::string s_idx = b.r();
  b.emit(Opcode::kMad, PtxType::kS32, {R(s_idx)}, {R(w), R(out_n), R(i)});
  std::string sv = b.ld_global_f32(b.elem_addr(src, s_idx));
  b.emit(is_max ? Opcode::kMax : Opcode::kAdd, PtxType::kF32, {R(acc)},
         {R(acc), R(sv)});
  b.emit(Opcode::kAdd, PtxType::kS32, {R(w)}, {R(w), I(1)});
  std::string more = b.setp(CompareOp::kLt, PtxType::kS32, R(w), R(window));
  b.guarded_bra(more, false, "WLOOP");

  if (!is_max) {
    std::string wf = b.f();
    b.emit(Opcode::kCvt, PtxType::kF32, {R(wf)}, {R(window)});
    std::string inv = b.f();
    b.emit(Opcode::kRcp, PtxType::kF32, {R(inv)}, {R(wf)});
    std::string scaled = b.f();
    b.emit(Opcode::kMul, PtxType::kF32, {R(scaled)}, {R(acc), R(inv)});
    acc = scaled;
  }
  b.st_global_f32(b.elem_addr(dst, i), acc);
  b.label("EXIT");
  b.ret();
  return b.finish();
}

/// Global average pool: one thread per channel, strided accumulation
/// over the H*W plane.
PtxKernel k_gap() {
  Kb b("gp_gap", kBlock);
  b.param("p_dst", PtxType::kU64);
  b.param("p_src", PtxType::kU64);
  b.param("p_c", PtxType::kU32);
  b.param("p_hw", PtxType::kU32);

  std::string i = b.gid();
  std::string c = b.ld_param_u32("p_c");
  std::string hw = b.ld_param_u32("p_hw");
  std::string src = b.ld_param_ptr("p_src");
  std::string dst = b.ld_param_ptr("p_dst");

  std::string skip = b.setp(CompareOp::kGe, PtxType::kS32, R(i), R(c));
  b.guarded_bra(skip, false, "EXIT");

  std::string acc = b.f();
  b.emit(Opcode::kMov, PtxType::kF32, {R(acc)}, {F(0.0)});
  std::string j = b.mov_u32(I(0));
  b.label("HLOOP");
  std::string idx = b.r();
  b.emit(Opcode::kMad, PtxType::kS32, {R(idx)}, {R(j), R(c), R(i)});
  std::string v = b.ld_global_f32(b.elem_addr(src, idx));
  b.emit(Opcode::kAdd, PtxType::kF32, {R(acc)}, {R(acc), R(v)});
  b.emit(Opcode::kAdd, PtxType::kS32, {R(j)}, {R(j), I(1)});
  std::string more = b.setp(CompareOp::kLt, PtxType::kS32, R(j), R(hw));
  b.guarded_bra(more, false, "HLOOP");

  std::string hwf = b.f();
  b.emit(Opcode::kCvt, PtxType::kF32, {R(hwf)}, {R(hw)});
  std::string inv = b.f();
  b.emit(Opcode::kRcp, PtxType::kF32, {R(inv)}, {R(hwf)});
  std::string mean = b.f();
  b.emit(Opcode::kMul, PtxType::kF32, {R(mean)}, {R(acc), R(inv)});
  b.st_global_f32(b.elem_addr(dst, i), mean);
  b.label("EXIT");
  b.ret();
  return b.finish();
}

/// Single-block softmax: strided exp pass, shared-memory tree
/// reduction (a genuinely divergent loop), then normalization.
PtxKernel k_softmax() {
  Kb b("gp_softmax", kBlock);
  b.param("p_dst", PtxType::kU64);
  b.param("p_src", PtxType::kU64);
  b.param("p_n", PtxType::kU32);
  b.shared(kBlock * 4);

  std::string tid = b.mov_u32(SR(SpecialReg::kTidX));
  std::string n = b.ld_param_u32("p_n");
  std::string src = b.ld_param_ptr("p_src");
  std::string dst = b.ld_param_ptr("p_dst");

  // Phase 1: per-thread partial sum of exp(x), exp stored to dst.
  std::string acc = b.f();
  b.emit(Opcode::kMov, PtxType::kF32, {R(acc)}, {F(0.0)});
  std::string i = b.mov_u32(I(0));
  b.emit(Opcode::kAdd, PtxType::kS32, {R(i)}, {R(i), R(tid)});
  std::string p1_skip = b.setp(CompareOp::kGe, PtxType::kS32, R(i), R(n));
  b.guarded_bra(p1_skip, false, "P1END");
  b.label("P1LOOP");
  std::string x = b.ld_global_f32(b.elem_addr(src, i));
  std::string e = emit_exp(b, x);
  b.emit(Opcode::kAdd, PtxType::kF32, {R(acc)}, {R(acc), R(e)});
  b.st_global_f32(b.elem_addr(dst, i), e);
  b.emit(Opcode::kAdd, PtxType::kS32, {R(i)}, {R(i), I(kBlock)});
  std::string p1_more = b.setp(CompareOp::kLt, PtxType::kS32, R(i), R(n));
  b.guarded_bra(p1_more, false, "P1LOOP");
  b.label("P1END");

  std::string saddr = b.rd();
  b.emit(Opcode::kMulWide, PtxType::kS32, {R(saddr)}, {R(tid), I(4)});
  b.emit(Opcode::kSt, PtxType::kF32, {}, {M(saddr), R(acc)},
         StateSpace::kShared);
  b.bar();

  // Phase 2: tree reduction (threads with tid >= s sit out each round).
  std::string s = b.mov_u32(I(kBlock / 2));
  b.label("RLOOP");
  std::string idle = b.setp(CompareOp::kGe, PtxType::kS32, R(tid), R(s));
  b.guarded_bra(idle, false, "SKIP");
  std::string other = b.r();
  b.emit(Opcode::kAdd, PtxType::kS32, {R(other)}, {R(tid), R(s)});
  std::string oaddr = b.rd();
  b.emit(Opcode::kMulWide, PtxType::kS32, {R(oaddr)}, {R(other), I(4)});
  std::string mine = b.f();
  b.emit(Opcode::kLd, PtxType::kF32, {R(mine)}, {M(saddr)},
         StateSpace::kShared);
  std::string theirs = b.f();
  b.emit(Opcode::kLd, PtxType::kF32, {R(theirs)}, {M(oaddr)},
         StateSpace::kShared);
  std::string sum = b.f();
  b.emit(Opcode::kAdd, PtxType::kF32, {R(sum)}, {R(mine), R(theirs)});
  b.emit(Opcode::kSt, PtxType::kF32, {}, {M(saddr), R(sum)},
         StateSpace::kShared);
  b.label("SKIP");
  b.bar();
  b.emit(Opcode::kShr, PtxType::kB32, {R(s)}, {R(s), I(1)});
  std::string r_more = b.setp(CompareOp::kGt, PtxType::kS32, R(s), I(0));
  b.guarded_bra(r_more, false, "RLOOP");

  std::string zero_addr = b.rd();
  b.emit(Opcode::kMov, PtxType::kU64, {R(zero_addr)}, {I(0)});
  std::string total = b.f();
  b.emit(Opcode::kLd, PtxType::kF32, {R(total)}, {M(zero_addr)},
         StateSpace::kShared);
  std::string inv = b.f();
  b.emit(Opcode::kRcp, PtxType::kF32, {R(inv)}, {R(total)});

  // Phase 3: normalize.
  std::string i3 = b.mov_u32(I(0));
  b.emit(Opcode::kAdd, PtxType::kS32, {R(i3)}, {R(i3), R(tid)});
  std::string p3_skip = b.setp(CompareOp::kGe, PtxType::kS32, R(i3), R(n));
  b.guarded_bra(p3_skip, false, "EXIT");
  b.label("P3LOOP");
  std::string ev = b.ld_global_f32(b.elem_addr(dst, i3));
  std::string nv = b.f();
  b.emit(Opcode::kMul, PtxType::kF32, {R(nv)}, {R(ev), R(inv)});
  b.st_global_f32(b.elem_addr(dst, i3), nv);
  b.emit(Opcode::kAdd, PtxType::kS32, {R(i3)}, {R(i3), I(kBlock)});
  std::string p3_more = b.setp(CompareOp::kLt, PtxType::kS32, R(i3), R(n));
  b.guarded_bra(p3_more, false, "P3LOOP");
  b.label("EXIT");
  b.ret();
  return b.finish();
}

}  // namespace

PtxModule CodeGenerator::kernel_library() {
  PtxModule mod;
  mod.version = "7.0";
  mod.target = "sm_70";
  mod.kernels.push_back(k_copy());
  mod.kernels.push_back(k_relu());
  mod.kernels.push_back(k_relu6());
  mod.kernels.push_back(k_sigmoid());
  mod.kernels.push_back(k_swish());
  mod.kernels.push_back(k_tanh());
  mod.kernels.push_back(k_add());
  mod.kernels.push_back(k_mul());
  mod.kernels.push_back(k_bn());
  mod.kernels.push_back(k_mul_bcast());
  mod.kernels.push_back(k_im2col());
  mod.kernels.push_back(k_gemm());
  mod.kernels.push_back(k_dwconv());
  mod.kernels.push_back(k_pool("gp_pool_max", true));
  mod.kernels.push_back(k_pool("gp_pool_avg", false));
  mod.kernels.push_back(k_gap());
  mod.kernels.push_back(k_softmax());
  return mod;
}

const PtxModule& CodeGenerator::parsed_kernel_library() {
  static const PtxModule module = parse_ptx(kernel_library().to_ptx());
  return module;
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Lowering context: accumulates launches and fake device addresses.
class Lowering {
 public:
  explicit Lowering(CompiledModel& out) : out_(out) {}

  /// Layer name recorded for subsequently emitted launches.
  void set_source(const std::string& source) { source_ = source; }

  std::int64_t alloc(std::int64_t bytes) {
    const std::int64_t addr = next_addr_;
    next_addr_ += (bytes + 255) / 256 * 256;
    return addr;
  }

  void launch(const std::string& kernel, std::int64_t threads,
              std::map<std::string, std::int64_t> args, LaunchStats stats,
              bool grid_stride_capped = false) {
    KernelLaunch l;
    l.kernel = kernel;
    l.block_dim = CodeGenerator::kBlockDim;
    std::int64_t blocks = ceil_div(std::max<std::int64_t>(threads, 1),
                                   l.block_dim);
    if (grid_stride_capped) blocks = std::min<std::int64_t>(blocks, 4096);
    l.grid_dim = std::max<std::int64_t>(blocks, 1);
    l.args = std::move(args);
    out_.launches.push_back(std::move(l));
    out_.stats.push_back(stats);
    out_.sources.push_back(source_);
  }

  /// Elementwise-style launch over n elements (grid-stride kernels).
  void elementwise(const std::string& kernel, std::int64_t dst,
                   std::int64_t a, std::int64_t n, LaunchStats stats) {
    launch(kernel, n, {{"p_dst", dst}, {"p_a", a}, {"p_n", n}}, stats,
           /*grid_stride_capped=*/true);
  }

 private:
  CompiledModel& out_;
  std::string source_;
  std::int64_t next_addr_ = 0x10000000;
};

}  // namespace

CompiledModel CodeGenerator::compile(const cnn::Model& model,
                                     std::int64_t batch) const {
  using cnn::LayerKind;
  GP_CHECK_MSG(batch >= 1 && batch <= 1024, "implausible batch size");

  CompiledModel out;
  out.model_name = model.name();
  out.module = kernel_library();

  cnn::StaticAnalyzer analyzer;
  const std::vector<cnn::TensorShape> shapes = analyzer.infer_shapes(model);

  Lowering lower(out);
  // Per-node output buffer addresses.
  std::vector<std::int64_t> buf(model.node_count(), 0);
  // Layer currently being lowered (captured by the emit helpers).
  std::string current_source;

  auto act_kernel = [](cnn::ActivationKind act) -> const char* {
    switch (act) {
      case cnn::ActivationKind::kReLU: return "gp_relu";
      case cnn::ActivationKind::kReLU6: return "gp_relu6";
      case cnn::ActivationKind::kSigmoid: return "gp_sigmoid";
      case cnn::ActivationKind::kSwish: return "gp_swish";
      case cnn::ActivationKind::kTanh: return "gp_tanh";
      default: return nullptr;  // linear / softmax handled separately
    }
  };

  auto emit_activation = [&](cnn::ActivationKind act, std::int64_t addr,
                             std::int64_t n) {
    if (act == cnn::ActivationKind::kSoftmax) {
      KernelLaunch l;
      l.kernel = "gp_softmax";
      l.grid_dim = batch;  // one block per batch row
      l.block_dim = kBlockDim;
      l.args = {{"p_dst", addr}, {"p_src", addr}, {"p_n", n / batch}};
      out.launches.push_back(std::move(l));
      out.stats.push_back(LaunchStats{n * 8, n * 8, 4 * n});
      out.sources.push_back(current_source);
      return;
    }
    if (const char* kname = act_kernel(act))
      lower.elementwise(kname, addr, addr, n,
                        LaunchStats{n * 4, n * 4, 2 * n});
  };

  // GEMM: im2col'd activations (M x K) times weights (K x N), plus bias.
  auto emit_gemm = [&](std::int64_t m, std::int64_t n_cols, std::int64_t k,
                       std::int64_t a_addr, std::int64_t c_addr) {
    const std::int64_t k_padded = ceil_div(k, kGemmTile) * kGemmTile;
    const std::int64_t w_addr = lower.alloc(k_padded * n_cols * 4);
    const std::int64_t bias_addr = lower.alloc(n_cols * 4);
    LaunchStats stats;
    stats.bytes_read = (m * k + k * n_cols + n_cols) * 4;
    stats.bytes_written = m * n_cols * 4;
    stats.flops = 2 * m * n_cols * k;
    lower.launch("gp_gemm", m * n_cols,
                 {{"p_c", c_addr},
                  {"p_a", a_addr},
                  {"p_b", w_addr},
                  {"p_bias", bias_addr},
                  {"p_total", m * n_cols},
                  {"p_n", n_cols},
                  {"p_kt", k_padded / kGemmTile}},
                 stats);
  };

  for (std::size_t ni = 0; ni < model.node_count(); ++ni) {
    const cnn::ModelNode& node = model.node(static_cast<cnn::NodeId>(ni));
    const cnn::Layer& layer = node.layer;
    current_source = layer.name;
    lower.set_source(current_source);
    const cnn::TensorShape& out_shape = shapes[ni];
    const std::int64_t out_elems = out_shape.elements() * batch;

    const std::int64_t in0 =
        node.inputs.empty() ? -1 : buf[static_cast<std::size_t>(
                                       node.inputs.front())];
    const std::int64_t in_elems =
        node.inputs.empty()
            ? 0
            : shapes[static_cast<std::size_t>(node.inputs.front())]
                      .elements() *
                  batch;

    switch (layer.kind) {
      case LayerKind::kInput:
        buf[ni] = lower.alloc(out_elems * 4);
        break;

      case LayerKind::kConv2D: {
        const cnn::TensorShape& in_shape =
            shapes[static_cast<std::size_t>(node.inputs.front())];
        const std::int64_t groups = layer.groups;
        const std::int64_t cin_g = in_shape.c / groups;
        const std::int64_t window =
            static_cast<std::int64_t>(layer.kernel_h) * layer.kernel_w *
            cin_g;
        const std::int64_t patches = out_shape.h * out_shape.w * batch;
        buf[ni] = lower.alloc(out_elems * 4);
        for (std::int64_t g = 0; g < groups; ++g) {
          const std::int64_t col_addr = lower.alloc(patches * window * 4);
          LaunchStats im_stats;
          im_stats.bytes_read = in_elems / groups * 4;
          im_stats.bytes_written = patches * window * 4;
          lower.launch("gp_im2col", patches,
                       {{"p_col", col_addr},
                        {"p_src", in0},
                        {"p_patches", patches},
                        {"p_window", window}},
                       im_stats);
          emit_gemm(patches, layer.filters / groups, window, col_addr,
                    buf[ni]);
        }
        emit_activation(layer.act, buf[ni], out_elems);
        break;
      }

      case LayerKind::kDepthwiseConv2D: {
        const std::int64_t window =
            static_cast<std::int64_t>(layer.kernel_h) * layer.kernel_w;
        buf[ni] = lower.alloc(out_elems * 4);
        const std::int64_t w_addr = lower.alloc(window * out_shape.c * 4);
        LaunchStats stats;
        stats.bytes_read = (in_elems + window * out_shape.c) * 4;
        stats.bytes_written = out_elems * 4;
        stats.flops = 2 * out_elems * window;
        lower.launch("gp_dwconv", out_elems,
                     {{"p_dst", buf[ni]},
                      {"p_src", in0},
                      {"p_w", w_addr},
                      {"p_out", out_elems},
                      {"p_window", window}},
                     stats);
        break;
      }

      case LayerKind::kDense: {
        buf[ni] = lower.alloc(out_elems * 4);
        emit_gemm(batch, layer.filters, in_elems / batch, in0, buf[ni]);
        emit_activation(layer.act, buf[ni], out_elems);
        break;
      }

      case LayerKind::kMaxPool:
      case LayerKind::kAvgPool: {
        const std::int64_t window =
            static_cast<std::int64_t>(layer.kernel_h) * layer.kernel_w;
        buf[ni] = lower.alloc(out_elems * 4);
        LaunchStats stats;
        stats.bytes_read = in_elems * 4;
        stats.bytes_written = out_elems * 4;
        stats.flops = out_elems * window;
        lower.launch(layer.kind == LayerKind::kMaxPool ? "gp_pool_max"
                                                       : "gp_pool_avg",
                     out_elems,
                     {{"p_dst", buf[ni]},
                      {"p_src", in0},
                      {"p_out", out_elems},
                      {"p_window", window}},
                     stats);
        break;
      }

      case LayerKind::kGlobalAvgPool: {
        const cnn::TensorShape& in_shape =
            shapes[static_cast<std::size_t>(node.inputs.front())];
        buf[ni] = lower.alloc(out_elems * 4);
        LaunchStats stats;
        stats.bytes_read = in_elems * 4;
        stats.bytes_written = out_elems * 4;
        stats.flops = in_elems;
        lower.launch("gp_gap", in_shape.c * batch,
                     {{"p_dst", buf[ni]},
                      {"p_src", in0},
                      {"p_c", in_shape.c * batch},
                      {"p_hw", in_shape.h * in_shape.w}},
                     stats);
        break;
      }

      case LayerKind::kActivation: {
        buf[ni] = lower.alloc(out_elems * 4);
        // Standalone activation writes a fresh buffer: dst != src.
        if (layer.act == cnn::ActivationKind::kSoftmax) {
          KernelLaunch l;
          l.kernel = "gp_softmax";
          l.grid_dim = batch;
          l.block_dim = kBlockDim;
          l.args = {{"p_dst", buf[ni]},
                    {"p_src", in0},
                    {"p_n", out_elems / batch}};
          out.launches.push_back(std::move(l));
          out.stats.push_back(
              LaunchStats{out_elems * 8, out_elems * 8, 4 * out_elems});
          out.sources.push_back(current_source);
        } else if (const char* kname = act_kernel(layer.act)) {
          lower.elementwise(kname, buf[ni], in0, out_elems,
                            LaunchStats{out_elems * 4, out_elems * 4,
                                        2 * out_elems});
        } else {
          lower.elementwise("gp_copy", buf[ni], in0, out_elems,
                            LaunchStats{out_elems * 4, out_elems * 4, 0});
        }
        break;
      }

      case LayerKind::kBatchNorm: {
        buf[ni] = lower.alloc(out_elems * 4);
        const std::int64_t c =
            out_shape.rank == 3 ? out_shape.c : out_shape.h;
        const std::int64_t scale = lower.alloc(c * 4);
        const std::int64_t shift = lower.alloc(c * 4);
        LaunchStats stats;
        stats.bytes_read = (out_elems + 2 * c) * 4;
        stats.bytes_written = out_elems * 4;
        stats.flops = 2 * out_elems;
        lower.launch("gp_bn", out_elems,
                     {{"p_dst", buf[ni]},
                      {"p_a", in0},
                      {"p_scale", scale},
                      {"p_shift", shift},
                      {"p_n", out_elems},
                      {"p_c", c}},
                     stats, /*grid_stride_capped=*/true);
        break;
      }

      case LayerKind::kAdd:
      case LayerKind::kMultiply: {
        buf[ni] = lower.alloc(out_elems * 4);
        // Fold operands pairwise; broadcast multiply picks the special
        // kernel when one operand is a rank-1 channel vector.
        std::int64_t acc = in0;
        cnn::TensorShape acc_shape =
            shapes[static_cast<std::size_t>(node.inputs.front())];
        for (std::size_t k = 1; k < node.inputs.size(); ++k) {
          const std::size_t other_ni =
              static_cast<std::size_t>(node.inputs[k]);
          const std::int64_t other = buf[other_ni];
          const cnn::TensorShape& other_shape = shapes[other_ni];
          const bool bcast = layer.kind == LayerKind::kMultiply &&
                             other_shape.rank != acc_shape.rank;
          if (bcast) {
            const std::int64_t c =
                acc_shape.rank == 3 ? acc_shape.c : other_shape.c;
            const std::int64_t map =
                acc_shape.rank == 3 ? acc : other;
            const std::int64_t vec =
                acc_shape.rank == 3 ? other : acc;
            LaunchStats stats;
            stats.bytes_read = (out_elems + c) * 4;
            stats.bytes_written = out_elems * 4;
            stats.flops = out_elems;
            lower.launch("gp_mul_bcast", out_elems,
                         {{"p_dst", buf[ni]},
                          {"p_a", map},
                          {"p_se", vec},
                          {"p_n", out_elems},
                          {"p_c", c}},
                         stats, /*grid_stride_capped=*/true);
          } else {
            LaunchStats stats;
            stats.bytes_read = 2 * out_elems * 4;
            stats.bytes_written = out_elems * 4;
            stats.flops = out_elems;
            lower.launch(layer.kind == LayerKind::kAdd ? "gp_add" : "gp_mul",
                         out_elems,
                         {{"p_dst", buf[ni]},
                          {"p_a", acc},
                          {"p_b", other},
                          {"p_n", out_elems}},
                         stats, /*grid_stride_capped=*/true);
          }
          acc = buf[ni];
          acc_shape = out_shape;
        }
        break;
      }

      case LayerKind::kConcat: {
        buf[ni] = lower.alloc(out_elems * 4);
        std::int64_t offset = 0;
        for (cnn::NodeId in : node.inputs) {
          const std::size_t in_i = static_cast<std::size_t>(in);
          const std::int64_t n = shapes[in_i].elements();
          lower.elementwise("gp_copy", buf[ni] + offset, buf[in_i], n,
                            LaunchStats{n * 4, n * 4, 0});
          offset += n * 4;
        }
        break;
      }

      case LayerKind::kZeroPad: {
        buf[ni] = lower.alloc(out_elems * 4);
        lower.elementwise("gp_copy", buf[ni], in0, in_elems,
                          LaunchStats{in_elems * 4, in_elems * 4, 0});
        break;
      }

      case LayerKind::kFlatten:
      case LayerKind::kDropout:
        // Views at inference time: reuse the input buffer.
        buf[ni] = in0;
        break;
    }
  }
  return out;
}

}  // namespace gpuperf::ptx
