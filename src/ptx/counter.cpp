#include "ptx/counter.hpp"

#include "common/check.hpp"
#include "ptx/parser.hpp"

namespace gpuperf::ptx {

InstructionCounter::InstructionCounter() {
  // Round-trip the kernel library through its textual form: the
  // analysis operates on *parsed* PTX, exactly as it would on nvcc
  // output.
  module_ = parse_ptx(CodeGenerator::kernel_library().to_ptx());
  for (const auto& kernel : module_.kernels)
    executors_.emplace(kernel.name, SymbolicExecutor(kernel));
}

ExecutionCounts InstructionCounter::count_launch(
    const KernelLaunch& launch, const Deadline& deadline) const {
  const auto it = executors_.find(launch.kernel);
  GP_CHECK_MSG(it != executors_.end(),
               "no executor for kernel '" << launch.kernel << "'");
  return it->second.run(launch, deadline);
}

ModelInstructionProfile InstructionCounter::count(
    const CompiledModel& model, const Deadline& deadline) const {
  ModelInstructionProfile profile;
  profile.model_name = model.model_name;
  profile.launch_count = static_cast<std::int64_t>(model.launches.size());
  profile.per_launch.reserve(model.launches.size());
  profile.per_launch_class.reserve(model.launches.size());

  for (const KernelLaunch& launch : model.launches) {
    const ExecutionCounts counts = count_launch(launch, deadline);
    profile.total_instructions += counts.total;
    for (std::size_t c = 0; c < kOpClassCount; ++c)
      profile.by_class[c] += counts.by_class[c];
    profile.total_threads += launch.total_threads();
    profile.per_launch.push_back(counts.total);
    profile.per_launch_class.push_back(counts.by_class);
  }
  return profile;
}

}  // namespace gpuperf::ptx
