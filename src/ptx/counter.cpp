#include "ptx/counter.hpp"

#include <atomic>
#include <cstdio>

#include "common/check.hpp"
#include "common/sharded_cache.hpp"
#include "common/thread_pool.hpp"
#include "ptx/parser.hpp"

namespace gpuperf::ptx {

namespace {

/// FNV-1a over the module's textual form: a cheap, stable fingerprint
/// that keeps memo entries from distinct modules apart even when kernel
/// names collide.
std::string module_fingerprint(const PtxModule& module) {
  const std::string text = module.to_ptx();
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Process-wide launch-result memo.  Leaked intentionally: executors
/// and serve sessions may consult it during static destruction.
ShardedLruCache<ExecutionCounts>& memo() {
  static auto* cache = new ShardedLruCache<ExecutionCounts>(4096, 16);
  return *cache;
}

std::atomic<std::uint64_t> g_parallel_tasks{0};

/// Launches with at least this many entries fan out across the shared
/// pool; below it the queue/join overhead outweighs the win.
constexpr std::size_t kParallelThreshold = 8;

}  // namespace

struct InstructionCounter::Library {
  PtxModule module;
  std::map<std::string, SymbolicExecutor> executors;
  std::string fingerprint;

  explicit Library(PtxModule mod) : module(std::move(mod)) {
    fingerprint = module_fingerprint(module);
    for (const auto& kernel : module.kernels)
      executors.emplace(kernel.name, SymbolicExecutor(kernel));
  }
};

InstructionCounter::InstructionCounter() {
  // The analysis operates on *parsed* PTX, exactly as it would on nvcc
  // output; the parse and the per-kernel slices happen once per
  // process (CodeGenerator::parsed_kernel_library) and are shared by
  // every default-constructed counter.
  static const std::shared_ptr<const Library> shared_library =
      std::make_shared<const Library>(CodeGenerator::parsed_kernel_library());
  lib_ = shared_library;
}

InstructionCounter::InstructionCounter(const PtxModule& module)
    : lib_(std::make_shared<const Library>(module)) {}

ExecutionCounts InstructionCounter::count_launch(
    const KernelLaunch& launch, const Deadline& deadline) const {
  const auto it = lib_->executors.find(launch.kernel);
  GP_CHECK_MSG(it != lib_->executors.end(),
               "no executor for kernel '" << launch.kernel << "'");
  const SymbolicExecutor& executor = it->second;

  // Key on everything that can influence the result: the module, the
  // kernel, the grid geometry and the values of the parameters the
  // slice actually reads.  Pointer-typed arguments (synthetic buffer
  // addresses) are off the slice and deliberately excluded — launches
  // that differ only in buffers share one entry.
  std::string key;
  key.reserve(96);
  key += lib_->fingerprint;
  key += '|';
  key += launch.kernel;
  key += '|';
  key += std::to_string(launch.grid_dim);
  key += 'x';
  key += std::to_string(launch.block_dim);
  for (const std::string& param : executor.slice_params()) {
    key += '|';
    key += param;
    key += '=';
    const auto arg = launch.args.find(param);
    // A missing argument fails inside run() (and is not cached).
    key += arg == launch.args.end() ? "?" : std::to_string(arg->second);
  }

  return *memo().get_or_compute(key, [&] {
    return std::make_shared<const ExecutionCounts>(
        executor.run(launch, deadline));
  });
}

ModelInstructionProfile InstructionCounter::count(
    const CompiledModel& model, const Deadline& deadline) const {
  const std::size_t n = model.launches.size();
  ModelInstructionProfile profile;
  profile.model_name = model.model_name;
  profile.launch_count = static_cast<std::int64_t>(n);

  std::vector<ExecutionCounts> results(n);
  ThreadPool& pool = ThreadPool::shared();
  if (n >= kParallelThreshold && pool.size() > 1) {
    // Deadline charges are not thread-safe on a shared object; each
    // task charges a private copy and the surplus is folded back into
    // the caller's deadline after the join, so total step accounting
    // matches the serial path.
    const Deadline base = deadline;
    const std::uint64_t base_steps = base.steps_charged();
    std::atomic<std::uint64_t> task_steps{0};
    pool.parallel_for(n, [&](std::size_t i) {
      Deadline task_deadline = base;
      results[i] = count_launch(model.launches[i], task_deadline);
      task_steps.fetch_add(task_deadline.steps_charged() - base_steps,
                           std::memory_order_relaxed);
      g_parallel_tasks.fetch_add(1, std::memory_order_relaxed);
    });
    const std::uint64_t folded = task_steps.load();
    if (folded > 0) deadline.charge("dca.count", folded);
  } else {
    for (std::size_t i = 0; i < n; ++i)
      results[i] = count_launch(model.launches[i], deadline);
  }

  // Deterministic reduction in launch order, independent of which
  // thread produced which result.
  profile.per_launch.reserve(n);
  profile.per_launch_class.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ExecutionCounts& counts = results[i];
    profile.total_instructions += counts.total;
    for (std::size_t c = 0; c < kOpClassCount; ++c)
      profile.by_class[c] += counts.by_class[c];
    profile.total_threads += model.launches[i].total_threads();
    profile.per_launch.push_back(counts.total);
    profile.per_launch_class.push_back(counts.by_class);
  }
  return profile;
}

InstructionCounter::MemoStats InstructionCounter::memo_stats() {
  const CacheStats cache = memo().stats();
  MemoStats out;
  out.hits = cache.hits;
  out.misses = cache.misses;
  out.evictions = cache.evictions;
  out.size = cache.size;
  out.parallel_tasks = g_parallel_tasks.load();
  return out;
}

void InstructionCounter::reset_memo() { memo().clear(); }

}  // namespace gpuperf::ptx
