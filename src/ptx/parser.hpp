// Recursive-descent parser for the PTX subset: module directives,
// .entry kernels with .param lists, .reg/.shared declarations, labels
// and guarded instructions.  Produces the same PtxModule structure the
// code generator builds, so generate -> print -> parse round-trips.
//
// Hardened (docs/ROBUSTNESS.md): kernel/instruction/param/operand
// counts are charged against an InputLimits budget (LimitExceeded past
// it), every syntax rejection is a typed InputRejected carrying line
// and column, and truncated input can never escape as a raw
// std::out_of_range / std::length_error.
#pragma once

#include <string>

#include "common/limits.hpp"
#include "ptx/module.hpp"

namespace gpuperf::ptx {

/// Parse PTX text into a module; throws InputRejected (a CheckError)
/// with "line L, col C" on malformed input and LimitExceeded when the
/// text blows its resource budget.
PtxModule parse_ptx(const std::string& text,
                    const InputLimits& limits = InputLimits::defaults());

}  // namespace gpuperf::ptx
