// Recursive-descent parser for the PTX subset: module directives,
// .entry kernels with .param lists, .reg/.shared declarations, labels
// and guarded instructions.  Produces the same PtxModule structure the
// code generator builds, so generate -> print -> parse round-trips.
#pragma once

#include <string>

#include "ptx/module.hpp"

namespace gpuperf::ptx {

/// Parse PTX text into a module; throws CheckError with a line number
/// on malformed input.
PtxModule parse_ptx(const std::string& text);

}  // namespace gpuperf::ptx
