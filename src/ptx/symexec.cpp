#include "ptx/symexec.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/check.hpp"
#include "ptx/depgraph.hpp"

namespace gpuperf::ptx {

ExecutionCounts& ExecutionCounts::operator+=(const ExecutionCounts& other) {
  total += other.total;
  for (std::size_t i = 0; i < by_class.size(); ++i)
    by_class[i] += other.by_class[i];
  if (block_exec.size() < other.block_exec.size())
    block_exec.resize(other.block_exec.size(), 0);
  for (std::size_t i = 0; i < other.block_exec.size(); ++i)
    block_exec[i] += other.block_exec[i];
  return *this;
}

namespace {

using i64 = std::int64_t;
using i128 = __int128;

i64 div_floor(i64 a, i64 b) {
  GP_DCHECK(b != 0);
  i64 q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

i64 div_ceil(i64 a, i64 b) { return -div_floor(-a, b); }

/// Affine value / predicate over (ctaid, tid).
struct Value {
  enum class Kind { kUnknown, kInt, kPred };
  Kind kind = Kind::kUnknown;
  // kInt: c0 + c_ct*ctaid + c_t*tid.
  // kPred: cmp(c0 + c_ct*ctaid + c_t*tid, 0).
  i64 c0 = 0, c_ct = 0, c_t = 0;
  CompareOp op = CompareOp::kLt;

  static Value unknown() { return Value{}; }
  static Value constant(i64 v) {
    Value out;
    out.kind = Kind::kInt;
    out.c0 = v;
    return out;
  }
  bool is_const() const {
    return kind == Kind::kInt && c_ct == 0 && c_t == 0;
  }
};

/// Half-open launch sub-box.
struct Box {
  i64 ct_lo = 0, ct_hi = 0, t_lo = 0, t_hi = 0;
  i64 weight() const { return (ct_hi - ct_lo) * (t_hi - t_lo); }
  bool empty() const { return ct_lo >= ct_hi || t_lo >= t_hi; }
};

/// Min/max of an affine form over a box (corners of a monotone form).
void affine_range(const Value& v, const Box& box, i64& lo, i64& hi) {
  GP_DCHECK(v.kind != Value::Kind::kUnknown);
  i128 min_v = v.c0, max_v = v.c0;
  auto extend = [&](i64 coef, i64 a_lo, i64 a_hi_inclusive) {
    if (coef == 0) return;
    const i128 x = static_cast<i128>(coef) * a_lo;
    const i128 y = static_cast<i128>(coef) * a_hi_inclusive;
    min_v += x < y ? x : y;
    max_v += x > y ? x : y;
  };
  extend(v.c_ct, box.ct_lo, box.ct_hi - 1);
  extend(v.c_t, box.t_lo, box.t_hi - 1);
  GP_CHECK_MSG(min_v >= INT64_MIN / 2 && max_v <= INT64_MAX / 2,
               "affine range overflow");
  lo = static_cast<i64>(min_v);
  hi = static_cast<i64>(max_v);
}

enum class Tri { kTrue, kFalse, kMixed };

Tri eval_pred_range(CompareOp op, i64 dmin, i64 dmax) {
  switch (op) {
    case CompareOp::kLt:
      if (dmax < 0) return Tri::kTrue;
      if (dmin >= 0) return Tri::kFalse;
      return Tri::kMixed;
    case CompareOp::kLe:
      if (dmax <= 0) return Tri::kTrue;
      if (dmin > 0) return Tri::kFalse;
      return Tri::kMixed;
    case CompareOp::kGt:
      if (dmin > 0) return Tri::kTrue;
      if (dmax <= 0) return Tri::kFalse;
      return Tri::kMixed;
    case CompareOp::kGe:
      if (dmin >= 0) return Tri::kTrue;
      if (dmax < 0) return Tri::kFalse;
      return Tri::kMixed;
    case CompareOp::kEq:
      if (dmin == 0 && dmax == 0) return Tri::kTrue;
      if (dmin > 0 || dmax < 0) return Tri::kFalse;
      return Tri::kMixed;
    case CompareOp::kNe:
      if (dmin > 0 || dmax < 0) return Tri::kTrue;
      if (dmin == 0 && dmax == 0) return Tri::kFalse;
      return Tri::kMixed;
  }
  return Tri::kMixed;
}

Tri eval_pred(const Value& pred, const Box& box) {
  i64 lo, hi;
  affine_range(pred, box, lo, hi);
  return eval_pred_range(pred.op, lo, hi);
}

/// One-variable split: regions of x in [lo, hi) by cmp(c0 + c1*x, 0).
struct Range1 {
  i64 lo, hi;
  bool truth;
};

std::vector<Range1> split_1d(i64 c0, i64 c1, i64 lo, i64 hi, CompareOp op) {
  std::vector<Range1> out;
  auto push = [&](i64 a, i64 b, bool truth) {
    a = std::max(a, lo);
    b = std::min(b, hi);
    if (a < b) out.push_back(Range1{a, b, truth});
  };
  if (c1 == 0) {
    const Tri t = eval_pred_range(op, c0, c0);
    push(lo, hi, t == Tri::kTrue);
    return out;
  }
  // d(x) = c0 + c1*x, strictly monotone over the integers.
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
    case CompareOp::kGt:
    case CompareOp::kGe: {
      // Find the first x where the predicate is false (monotone flip).
      // Normalize to "d(x) < bound" style via direction analysis:
      // predicate truth is monotone in x, so binary-free threshold math
      // suffices.
      const bool true_at_low_d = op == CompareOp::kLt || op == CompareOp::kLe;
      // Threshold on d: lt -> d < 0; le -> d <= 0; gt -> d > 0; ge -> d >= 0.
      // first x with d(x) >= 0 is x0 = ceil(-c0 / c1) for c1 > 0.
      if (c1 > 0) {
        const i64 x_ge0 = div_ceil(-c0, c1);          // d >= 0 from here
        const i64 x_gt0 = div_floor(-c0, c1) + 1;     // d > 0 from here
        switch (op) {
          case CompareOp::kLt:
            push(lo, x_ge0, true);
            push(x_ge0, hi, false);
            break;
          case CompareOp::kLe:
            push(lo, x_gt0, true);
            push(x_gt0, hi, false);
            break;
          case CompareOp::kGt:
            push(lo, x_gt0, false);
            push(x_gt0, hi, true);
            break;
          case CompareOp::kGe:
            push(lo, x_ge0, false);
            push(x_ge0, hi, true);
            break;
          default:
            break;
        }
      } else {
        // Decreasing d: mirror by substituting x -> -x.
        std::vector<Range1> mirrored =
            split_1d(c0, -c1, -(hi - 1), -lo + 1, op);
        for (const Range1& r : mirrored)
          push(-(r.hi - 1), -r.lo + 1, r.truth);
        std::sort(out.begin(), out.end(),
                  [](const Range1& a, const Range1& b) { return a.lo < b.lo; });
      }
      (void)true_at_low_d;
      break;
    }
    case CompareOp::kEq: {
      if ((-c0) % c1 == 0) {
        const i64 x0 = (-c0) / c1;
        push(lo, x0, false);
        push(x0, x0 + 1, true);
        push(x0 + 1, hi, false);
      } else {
        push(lo, hi, false);
      }
      break;
    }
    case CompareOp::kNe: {
      if ((-c0) % c1 == 0) {
        const i64 x0 = (-c0) / c1;
        push(lo, x0, true);
        push(x0, x0 + 1, false);
        push(x0 + 1, hi, true);
      } else {
        push(lo, hi, true);
      }
      break;
    }
  }
  return out;
}

/// Partition a box by a predicate into homogeneous sub-boxes.
std::vector<std::pair<Box, bool>> split_box(const Value& pred,
                                            const Box& box) {
  std::vector<std::pair<Box, bool>> out;
  if (pred.c_t == 0) {
    for (const Range1& r :
         split_1d(pred.c0, pred.c_ct, box.ct_lo, box.ct_hi, pred.op)) {
      Box b = box;
      b.ct_lo = r.lo;
      b.ct_hi = r.hi;
      out.push_back({b, r.truth});
    }
    return out;
  }
  if (pred.c_ct == 0) {
    for (const Range1& r :
         split_1d(pred.c0, pred.c_t, box.t_lo, box.t_hi, pred.op)) {
      Box b = box;
      b.t_lo = r.lo;
      b.t_hi = r.hi;
      out.push_back({b, r.truth});
    }
    return out;
  }

  // General case: classify each ctaid row; rows that are uniformly
  // true/false group into 1-d runs, mixed rows split over tid.  Our
  // kernels produce at most one mixed row per box (gid guards), so the
  // enumeration cap is generous.
  i64 mixed_rows = 0;
  i64 run_lo = box.ct_lo;
  Tri run_tri = Tri::kMixed;
  bool run_open = false;
  auto close_run = [&](i64 end) {
    if (run_open && run_lo < end) {
      Box b = box;
      b.ct_lo = run_lo;
      b.ct_hi = end;
      out.push_back({b, run_tri == Tri::kTrue});
    }
    run_open = false;
  };
  for (i64 ct = box.ct_lo; ct < box.ct_hi; ++ct) {
    Value row = pred;
    row.c0 += pred.c_ct * ct;
    row.c_ct = 0;
    Box row_box = box;
    row_box.ct_lo = ct;
    row_box.ct_hi = ct + 1;
    const Tri tri = eval_pred(row, row_box);
    if (tri == Tri::kMixed) {
      close_run(ct);
      GP_CHECK_MSG(++mixed_rows <= 64,
                   "unsupported divergence pattern (too many mixed rows)");
      for (const Range1& r :
           split_1d(row.c0, row.c_t, box.t_lo, box.t_hi, row.op)) {
        Box b = row_box;
        b.t_lo = r.lo;
        b.t_hi = r.hi;
        out.push_back({b, r.truth});
      }
    } else {
      if (!run_open || tri != run_tri) {
        close_run(ct);
        run_open = true;
        run_lo = ct;
        run_tri = tri;
      }
    }
  }
  close_run(box.ct_hi);
  return out;
}

// Dense environment indexed by interned register id; a default
// (kUnknown) entry plays the role the old string-keyed map gave to an
// absent key, so no per-step hashing remains on the hot path.
using Env = std::vector<Value>;

/// Back-edge snapshot for loop acceleration.
struct Snapshot {
  Env env;
  std::vector<i64> counts;
  i64 pred_c0 = 0;
};

struct State {
  Box box;
  std::size_t block = 0;
  Env env;
  std::vector<i64> counts;  // per-block, per-thread
  std::unordered_map<std::size_t, std::deque<Snapshot>> snaps;
};

}  // namespace

struct SymbolicExecutor::Impl {
  PtxKernel kernel;
  Cfg cfg;
  Slice slice;
  // Per-block opclass histograms and sizes.
  std::vector<std::array<i64, kOpClassCount>> block_hist;
  std::vector<i64> block_size;
  // Kernel parameters read by in-slice ld.param instructions — the only
  // launch arguments that can influence counts (memo key material).
  std::vector<std::string> slice_params;

  explicit Impl(PtxKernel k, const Deadline& deadline)
      : kernel(std::move(k)) {
    kernel.intern_registers();  // no-op for parser/codegen output
    cfg = Cfg::build(kernel);
    slice =
        compute_slice(kernel, DependencyGraph::build(kernel, deadline),
                      deadline);
    for (std::size_t i = 0; i < kernel.instructions.size(); ++i) {
      const Instruction& inst = kernel.instructions[i];
      if (!slice.in_slice[i] || inst.opcode != Opcode::kLd ||
          inst.space != StateSpace::kParam)
        continue;
      if (const auto* mem = std::get_if<MemOperand>(&inst.srcs.front()))
        if (std::find(slice_params.begin(), slice_params.end(), mem->base) ==
            slice_params.end())
          slice_params.push_back(mem->base);
    }
    block_hist.resize(cfg.block_count());
    block_size.resize(cfg.block_count());
    for (std::size_t b = 0; b < cfg.block_count(); ++b) {
      const BasicBlock& block = cfg.block(b);
      block_size[b] = static_cast<i64>(block.size());
      auto& hist = block_hist[b];
      hist.fill(0);
      for (std::size_t i = block.first; i <= block.last; ++i) {
        const Instruction& inst = kernel.instructions[i];
        ++hist[static_cast<std::size_t>(
            classify(inst.opcode, inst.type, inst.space))];
      }
    }
  }

  Value eval_operand(const Operand& op, const Env& env,
                     const KernelLaunch& launch) const {
    if (const auto* r = std::get_if<RegOperand>(&op)) {
      GP_DCHECK(r->id >= 0 &&
                static_cast<std::size_t>(r->id) < env.size());
      return env[r->id];
    }
    if (const auto* imm = std::get_if<ImmOperand>(&op)) {
      if (imm->is_float) return Value::unknown();
      return Value::constant(imm->ivalue());
    }
    if (const auto* sr = std::get_if<SpecialOperand>(&op)) {
      Value v;
      v.kind = Value::Kind::kInt;
      switch (sr->reg) {
        case SpecialReg::kTidX: v.c_t = 1; break;
        case SpecialReg::kCtaidX: v.c_ct = 1; break;
        case SpecialReg::kNtidX: v.c0 = launch.block_dim; break;
        case SpecialReg::kNctaidX: v.c0 = launch.grid_dim; break;
      }
      return v;
    }
    return Value::unknown();
  }

  /// Evaluate one slice instruction, updating env.
  void eval_instruction(const Instruction& inst, Env& env,
                        const KernelLaunch& launch) const {
    GP_CHECK_MSG(inst.guard.empty(),
                 "guarded non-branch instruction in slice");
    auto src = [&](std::size_t i) {
      GP_CHECK(i < inst.srcs.size());
      return eval_operand(inst.srcs[i], env, launch);
    };
    auto set_dst = [&](Value v) {
      GP_CHECK(inst.dsts.size() == 1);
      const auto* r = std::get_if<RegOperand>(&inst.dsts.front());
      GP_CHECK(r != nullptr && r->id >= 0);
      env[r->id] = v;
    };
    auto affine_add = [](const Value& a, const Value& b, i64 sign) {
      if (a.kind != Value::Kind::kInt || b.kind != Value::Kind::kInt)
        return Value::unknown();
      Value v;
      v.kind = Value::Kind::kInt;
      v.c0 = a.c0 + sign * b.c0;
      v.c_ct = a.c_ct + sign * b.c_ct;
      v.c_t = a.c_t + sign * b.c_t;
      return v;
    };
    auto affine_mul = [](const Value& a, const Value& b) {
      if (a.kind != Value::Kind::kInt || b.kind != Value::Kind::kInt)
        return Value::unknown();
      const Value* scale = nullptr;
      const Value* other = nullptr;
      if (a.is_const()) {
        scale = &a;
        other = &b;
      } else if (b.is_const()) {
        scale = &b;
        other = &a;
      } else {
        return Value::unknown();
      }
      Value v;
      v.kind = Value::Kind::kInt;
      v.c0 = other->c0 * scale->c0;
      v.c_ct = other->c_ct * scale->c0;
      v.c_t = other->c_t * scale->c0;
      return v;
    };

    const bool is_float = is_float_type(inst.type);
    switch (inst.opcode) {
      case Opcode::kMov:
      case Opcode::kCvt:
      case Opcode::kCvta:
        set_dst(is_float ? Value::unknown() : src(0));
        break;
      case Opcode::kLd: {
        if (inst.space == StateSpace::kParam) {
          const auto* mem = std::get_if<MemOperand>(&inst.srcs.front());
          GP_CHECK(mem != nullptr && mem->offset == 0);
          const auto it = launch.args.find(mem->base);
          GP_CHECK_MSG(it != launch.args.end(),
                       "launch missing argument '" << mem->base << "'");
          set_dst(Value::constant(it->second));
        } else {
          set_dst(Value::unknown());
        }
        break;
      }
      case Opcode::kAdd:
        set_dst(is_float ? Value::unknown()
                         : affine_add(src(0), src(1), +1));
        break;
      case Opcode::kSub:
        set_dst(is_float ? Value::unknown()
                         : affine_add(src(0), src(1), -1));
        break;
      case Opcode::kMul:
      case Opcode::kMulLo:
      case Opcode::kMulWide:
        set_dst(is_float ? Value::unknown() : affine_mul(src(0), src(1)));
        break;
      case Opcode::kMad: {
        if (is_float) {
          set_dst(Value::unknown());
          break;
        }
        const Value prod = affine_mul(src(0), src(1));
        set_dst(affine_add(prod, src(2), +1));
        break;
      }
      case Opcode::kShl: {
        const Value a = src(0);
        const Value s = src(1);
        if (a.kind == Value::Kind::kInt && s.is_const() && s.c0 >= 0 &&
            s.c0 < 63) {
          Value v = a;
          v.c0 <<= s.c0;
          v.c_ct <<= s.c0;
          v.c_t <<= s.c0;
          set_dst(v);
        } else {
          set_dst(Value::unknown());
        }
        break;
      }
      case Opcode::kShr: {
        const Value a = src(0);
        const Value s = src(1);
        if (a.is_const() && s.is_const() && s.c0 >= 0 && s.c0 < 63)
          set_dst(Value::constant(a.c0 >> s.c0));
        else
          set_dst(Value::unknown());
        break;
      }
      case Opcode::kDiv: {
        const Value a = src(0);
        const Value b2 = src(1);
        if (a.is_const() && b2.is_const() && b2.c0 != 0)
          set_dst(Value::constant(a.c0 / b2.c0));
        else
          set_dst(Value::unknown());
        break;
      }
      case Opcode::kRem: {
        const Value a = src(0);
        const Value b2 = src(1);
        if (a.is_const() && b2.is_const() && b2.c0 != 0)
          set_dst(Value::constant(a.c0 % b2.c0));
        else
          set_dst(Value::unknown());
        break;
      }
      case Opcode::kMin:
      case Opcode::kMax: {
        const Value a = src(0);
        const Value b2 = src(1);
        if (a.is_const() && b2.is_const())
          set_dst(Value::constant(inst.opcode == Opcode::kMin
                                      ? std::min(a.c0, b2.c0)
                                      : std::max(a.c0, b2.c0)));
        else
          set_dst(Value::unknown());
        break;
      }
      case Opcode::kSetp: {
        const Value a = src(0);
        const Value b2 = src(1);
        GP_CHECK(inst.cmp.has_value());
        if (a.kind != Value::Kind::kInt || b2.kind != Value::Kind::kInt) {
          Value v;  // unknown predicate — fatal only if branched on
          set_dst(v);
          break;
        }
        Value v;
        v.kind = Value::Kind::kPred;
        v.op = *inst.cmp;
        v.c0 = a.c0 - b2.c0;
        v.c_ct = a.c_ct - b2.c_ct;
        v.c_t = a.c_t - b2.c_t;
        set_dst(v);
        break;
      }
      case Opcode::kSelp: {
        // Not generated in branch-feeding positions; keep unknown.
        set_dst(Value::unknown());
        break;
      }
      case Opcode::kSt:
      case Opcode::kBar:
        break;  // no register effects
      case Opcode::kNeg:
      case Opcode::kAbs: {
        const Value a = src(0);
        if (!is_float && a.kind == Value::Kind::kInt) {
          Value v = a;
          if (inst.opcode == Opcode::kNeg || a.is_const()) {
            if (inst.opcode == Opcode::kNeg) {
              v.c0 = -v.c0;
              v.c_ct = -v.c_ct;
              v.c_t = -v.c_t;
            } else {
              v = Value::constant(std::abs(a.c0));
            }
            set_dst(v);
            break;
          }
        }
        set_dst(Value::unknown());
        break;
      }
      default:
        if (!inst.dsts.empty()) set_dst(Value::unknown());
        break;
    }
  }

  /// Negate a predicate value (for "@!%p" guards).
  static Value negate_pred(Value v) {
    switch (v.op) {
      case CompareOp::kLt: v.op = CompareOp::kGe; break;
      case CompareOp::kLe: v.op = CompareOp::kGt; break;
      case CompareOp::kGt: v.op = CompareOp::kLe; break;
      case CompareOp::kGe: v.op = CompareOp::kLt; break;
      case CompareOp::kEq: v.op = CompareOp::kNe; break;
      case CompareOp::kNe: v.op = CompareOp::kEq; break;
    }
    return v;
  }

  /// Smallest k >= 1 such that the predicate (with diff advanced by
  /// k * delta) is no longer uniformly true over the box; 0 if none
  /// exists (infinite loop).
  i64 first_non_true(const Value& pred, const Box& box, i64 delta) const {
    if (delta == 0) return 0;
    i64 dmin, dmax;
    affine_range(pred, box, dmin, dmax);
    switch (pred.op) {
      case CompareOp::kLt:  // true iff dmax < 0
        if (delta <= 0) return 0;
        return div_ceil(-dmax, delta);
      case CompareOp::kLe:  // true iff dmax <= 0
        if (delta <= 0) return 0;
        return div_floor(-dmax, delta) + 1;
      case CompareOp::kGt:  // true iff dmin > 0
        if (delta >= 0) return 0;
        return div_ceil(dmin, -delta);
      case CompareOp::kGe:  // true iff dmin >= 0
        if (delta >= 0) return 0;
        return div_floor(dmin, -delta) + 1;
      case CompareOp::kEq:
        return 1;  // any nonzero delta breaks equality immediately
      case CompareOp::kNe: {
        // True while 0 outside [dmin, dmax]; interval slides by delta.
        if (delta > 0 && dmax < 0) return div_ceil(-dmax, delta);
        if (delta < 0 && dmin > 0) return div_ceil(dmin, -delta);
        return 0;
      }
    }
    return 0;
  }

  ExecutionCounts run(const KernelLaunch& launch,
                      const Deadline& deadline) const {
    GP_CHECK(launch.grid_dim >= 1 && launch.block_dim >= 1);

    std::vector<i64> global_block_exec(cfg.block_count(), 0);

    std::vector<State> work;
    State init;
    init.box = Box{0, launch.grid_dim, 0, launch.block_dim};
    init.block = cfg.entry();
    init.env.assign(kernel.register_count(), Value::unknown());
    init.counts.assign(cfg.block_count(), 0);
    work.push_back(std::move(init));

    std::size_t steps = 0;
    constexpr std::size_t kStepLimit = 50'000'000;

    while (!work.empty()) {
      State st = std::move(work.back());
      work.pop_back();

      for (;;) {
        GP_CHECK_MSG(++steps < kStepLimit,
                     "symbolic execution step limit exceeded in "
                         << kernel.name);
        deadline.charge(kernel.name.c_str());
        const BasicBlock& block = cfg.block(st.block);
        st.counts[st.block] += 1;

        // Evaluate the slice instructions of this block.
        for (std::size_t i = block.first; i <= block.last; ++i) {
          if (!slice.in_slice[i]) continue;
          if (kernel.instructions[i].is_branch()) continue;
          eval_instruction(kernel.instructions[i], st.env, launch);
        }

        const Instruction& term = kernel.instructions[block.last];
        if (term.is_exit()) {
          const i64 w = st.box.weight();
          for (std::size_t b = 0; b < st.counts.size(); ++b)
            global_block_exec[b] += st.counts[b] * w;
          break;
        }

        if (!term.is_branch()) {
          GP_CHECK(block.succs.size() == 1);
          st.block = block.succs.front();
          continue;
        }

        // Branch: unconditional or guarded.
        const auto* label = std::get_if<LabelOperand>(&term.srcs.front());
        GP_CHECK(label != nullptr);
        const std::size_t target =
            cfg.block_of(kernel.label_target(label->name));

        if (term.guard.empty()) {
          st.block = target;
          continue;
        }

        GP_DCHECK(term.guard_id >= 0 &&
                  static_cast<std::size_t>(term.guard_id) < st.env.size());
        GP_CHECK_MSG(st.env[term.guard_id].kind == Value::Kind::kPred,
                     "branch on unknown predicate '"
                         << term.guard << "' in " << kernel.name
                         << " (data-dependent branch?)");
        Value pred = st.env[term.guard_id];
        if (term.guard_negated) pred = negate_pred(pred);

        const Tri tri = eval_pred(pred, st.box);
        if (tri == Tri::kMixed) {
          auto parts = split_box(pred, st.box);
          GP_CHECK_MSG(parts.size() >= 2, "mixed predicate failed to split");
          for (auto& [sub_box, truth] : parts) {
            State child = st;  // env/counts/snaps copied
            child.box = sub_box;
            child.block = truth ? target : (st.block + 1);
            GP_CHECK(truth || st.block + 1 < cfg.block_count());
            work.push_back(std::move(child));
          }
          break;  // children carry on
        }

        const bool taken = tri == Tri::kTrue;
        if (!taken) {
          GP_CHECK_MSG(st.block + 1 < cfg.block_count(),
                       "fallthrough off kernel end");
          st.block = st.block + 1;
          continue;
        }

        // Taken back-edge: try affine loop acceleration.
        if (target <= st.block) {
          auto& history = st.snaps[block.last];
          Snapshot snap;
          snap.env = st.env;
          snap.counts = st.counts;
          snap.pred_c0 = pred.c0;
          history.push_back(std::move(snap));
          if (history.size() > 3) history.pop_front();

          if (history.size() == 3) {
            const Snapshot& s0 = history[0];
            const Snapshot& s1 = history[1];
            const Snapshot& s2 = history[2];
            bool consistent = true;

            // Register deltas must match between consecutive snapshots
            // (affine coefficients unchanged, c0 advancing linearly).
            std::vector<std::pair<int, i64>> reg_delta;
            reg_delta.reserve(s2.env.size());
            for (std::size_t id = 0; id < s2.env.size(); ++id) {
              const Value& v2 = s2.env[id];
              if (v2.kind != Value::Kind::kInt) continue;
              const Value& v1 = s1.env[id];
              const Value& v0 = s0.env[id];
              if (v1.kind != Value::Kind::kInt ||
                  v0.kind != Value::Kind::kInt ||
                  v1.c_ct != v2.c_ct || v1.c_t != v2.c_t ||
                  v0.c_ct != v2.c_ct || v0.c_t != v2.c_t) {
                consistent = false;
                break;
              }
              const i64 d21 = v2.c0 - v1.c0;
              const i64 d10 = v1.c0 - v0.c0;
              if (d21 != d10) {
                consistent = false;
                break;
              }
              reg_delta.emplace_back(static_cast<int>(id), d21);
            }

            std::vector<i64> count_delta(st.counts.size(), 0);
            if (consistent) {
              for (std::size_t b = 0; b < st.counts.size(); ++b) {
                const i64 d21 = s2.counts[b] - s1.counts[b];
                const i64 d10 = s1.counts[b] - s0.counts[b];
                if (d21 != d10) {
                  consistent = false;
                  break;
                }
                count_delta[b] = d21;
              }
            }

            const i64 pred_delta = s2.pred_c0 - s1.pred_c0;
            if (consistent &&
                (s1.pred_c0 - s0.pred_c0) == pred_delta &&
                pred_delta != 0) {
              const i64 k = first_non_true(pred, st.box, pred_delta);
              GP_CHECK_MSG(k != 0, "non-terminating loop in " << kernel.name);
              const i64 ff = k - 1;  // iterations to fast-forward
              if (ff > 0) {
                for (const auto& [id, delta] : reg_delta)
                  st.env[id].c0 += ff * delta;
                for (std::size_t b = 0; b < st.counts.size(); ++b)
                  st.counts[b] += ff * count_delta[b];
                history.clear();
              }
            }
          }
        }
        st.block = target;
      }
    }

    ExecutionCounts out;
    out.block_exec = std::move(global_block_exec);
    for (std::size_t b = 0; b < out.block_exec.size(); ++b) {
      out.total += out.block_exec[b] * block_size[b];
      for (std::size_t c = 0; c < kOpClassCount; ++c)
        out.by_class[c] += out.block_exec[b] * block_hist[b][c];
    }
    return out;
  }
};

SymbolicExecutor::SymbolicExecutor(const PtxKernel& kernel,
                                   const Deadline& deadline)
    : impl_(std::make_unique<Impl>(kernel, deadline)) {}

SymbolicExecutor::SymbolicExecutor(PtxKernel&& kernel,
                                   const Deadline& deadline)
    : impl_(std::make_unique<Impl>(std::move(kernel), deadline)) {}

SymbolicExecutor::~SymbolicExecutor() = default;
SymbolicExecutor::SymbolicExecutor(SymbolicExecutor&&) noexcept = default;
SymbolicExecutor& SymbolicExecutor::operator=(SymbolicExecutor&&) noexcept =
    default;

ExecutionCounts SymbolicExecutor::run(const KernelLaunch& launch,
                                      const Deadline& deadline) const {
  return impl_->run(launch, deadline);
}

const Cfg& SymbolicExecutor::cfg() const { return impl_->cfg; }
const Slice& SymbolicExecutor::slice() const { return impl_->slice; }
const PtxKernel& SymbolicExecutor::kernel() const { return impl_->kernel; }
const std::vector<std::string>& SymbolicExecutor::slice_params() const {
  return impl_->slice_params;
}

}  // namespace gpuperf::ptx
