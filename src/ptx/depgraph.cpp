#include "ptx/depgraph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuperf::ptx {

DependencyGraph DependencyGraph::build(const PtxKernel& kernel) {
  GP_CHECK_MSG(kernel.registers_interned(),
               "DependencyGraph::build requires interned registers in "
                   << kernel.name);
  DependencyGraph g;
  const auto& ins = kernel.instructions;
  g.deps_.resize(ins.size());
  g.reg_names_ = kernel.register_names;
  g.defs_by_id_.resize(kernel.register_count());

  for (std::size_t i = 0; i < ins.size(); ++i)
    for (int id : ins[i].def_ids()) g.defs_by_id_[id].push_back(i);

  for (std::size_t i = 0; i < ins.size(); ++i) {
    std::vector<std::size_t>& d = g.deps_[i];
    for (int id : ins[i].use_ids()) {
      const auto& defs = g.defs_by_id_[id];
      if (defs.empty()) continue;  // undef read: param-free reg
      d.insert(d.end(), defs.begin(), defs.end());
    }
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  return g;
}

const std::vector<std::size_t>& DependencyGraph::deps(std::size_t i) const {
  GP_CHECK(i < deps_.size());
  return deps_[i];
}

const std::vector<std::size_t>& DependencyGraph::defs_of_id(int reg_id) const {
  if (reg_id < 0 || static_cast<std::size_t>(reg_id) >= defs_by_id_.size())
    return empty_;
  return defs_by_id_[reg_id];
}

const std::vector<std::size_t>& DependencyGraph::defs_of(
    const std::string& reg) const {
  for (std::size_t id = 0; id < reg_names_.size(); ++id)
    if (reg_names_[id] == reg) return defs_by_id_[id];
  return empty_;
}

std::size_t DependencyGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& d : deps_) n += d.size();
  return n;
}

}  // namespace gpuperf::ptx
