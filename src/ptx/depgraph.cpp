#include "ptx/depgraph.hpp"

#include <atomic>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/limits.hpp"
#include "common/mapped_buffer.hpp"

namespace gpuperf::ptx {

namespace {

std::atomic<std::uint64_t> g_total_csr_bytes{0};

/// Per-thread scratch for builder count/cursor arrays; reset after each
/// build, retaining its largest chunk for the next one.
Arena& scratch_arena() {
  thread_local Arena arena(256u << 10);
  return arena;
}

}  // namespace

DependencyGraph DependencyGraph::build(const PtxKernel& kernel,
                                       const Deadline& deadline) {
  GP_CHECK_MSG(kernel.registers_interned(),
               "DependencyGraph::build requires interned registers in "
                   << kernel.name);
  const auto& ins = kernel.instructions;
  GP_CHECK_MSG(ins.size() <= static_cast<std::size_t>(UINT32_MAX),
               "instruction count exceeds CSR index range in "
                   << kernel.name);

  const InputLimits& limits = InputLimits::defaults();
  const SpillConfig spill = dca_spill_config();
  DependencyGraph g;
  Arena& scratch = scratch_arena();
  const Arena::ResetScope scope(scratch);

  // Pass A: defs CSR (register id -> definition sites).  Rows come out
  // naturally sorted because instructions are visited in order.
  {
    CsrGraph::Builder builder(
        kernel.register_count(), scratch,
        {spill, limits.max_depgraph_bytes, "dependency graph bytes"});
    for (std::size_t i = 0; i < ins.size(); ++i) {
      deadline.charge("depgraph");
      ins[i].for_each_def_id([&](int id) { builder.add_count(id); });
    }
    builder.finish_counts();
    for (std::size_t i = 0; i < ins.size(); ++i)
      ins[i].for_each_def_id([&](int id) {
        builder.add_edge(id, static_cast<std::uint32_t>(i));
      });
    g.defs_ = builder.finish();
  }

  // Pass B: deps CSR (instruction -> union of defs of every used
  // register).  Row capacity is the exact pre-dedup edge count; finish()
  // sorts each row and compacts duplicates in place.
  {
    CsrGraph::Builder builder(
        ins.size(), scratch,
        {spill, limits.max_depgraph_bytes, "dependency graph bytes"});
    for (std::size_t i = 0; i < ins.size(); ++i) {
      deadline.charge("depgraph");
      ins[i].for_each_use_id(
          [&](int id) { builder.add_count(i, g.defs_of_id(id).size()); });
    }
    builder.finish_counts();
    for (std::size_t i = 0; i < ins.size(); ++i) {
      deadline.charge("depgraph");
      ins[i].for_each_use_id([&](int id) {
        for (std::uint32_t def : g.defs_of_id(id)) builder.add_edge(i, def);
      });
    }
    g.deps_ = builder.finish(/*sort_unique_rows=*/true, deadline);
  }

  g_total_csr_bytes.fetch_add(g.csr_bytes(), std::memory_order_relaxed);
  // A spilled graph's build-time pages are disposable: drop them now so
  // RSS holds only what traversal actually faults back in.
  if (g.spilled()) {
    g.deps_.release_resident();
    g.defs_.release_resident();
  }
  return g;
}

std::uint64_t DependencyGraph::total_csr_bytes() {
  return g_total_csr_bytes.load(std::memory_order_relaxed);
}

}  // namespace gpuperf::ptx
