#include "ptx/depgraph.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gpuperf::ptx {

DependencyGraph DependencyGraph::build(const PtxKernel& kernel) {
  DependencyGraph g;
  const auto& ins = kernel.instructions;
  g.deps_.resize(ins.size());

  for (std::size_t i = 0; i < ins.size(); ++i)
    for (const std::string& reg : ins[i].defs()) g.defs_[reg].push_back(i);

  for (std::size_t i = 0; i < ins.size(); ++i) {
    std::vector<std::size_t>& d = g.deps_[i];
    for (const std::string& reg : ins[i].uses()) {
      const auto it = g.defs_.find(reg);
      if (it == g.defs_.end()) continue;  // undef read: param-free reg
      d.insert(d.end(), it->second.begin(), it->second.end());
    }
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  return g;
}

const std::vector<std::size_t>& DependencyGraph::deps(std::size_t i) const {
  GP_CHECK(i < deps_.size());
  return deps_[i];
}

const std::vector<std::size_t>& DependencyGraph::defs_of(
    const std::string& reg) const {
  const auto it = defs_.find(reg);
  return it == defs_.end() ? empty_ : it->second;
}

std::size_t DependencyGraph::edge_count() const {
  std::size_t n = 0;
  for (const auto& d : deps_) n += d.size();
  return n;
}

}  // namespace gpuperf::ptx
