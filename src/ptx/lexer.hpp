// Tokenizer for the PTX textual subset.  Identifiers keep their dots
// ("mad.lo.s32", "%tid.x") — instruction-name decomposition happens in
// the parser, which has the context to do it right.
//
// Hardened front end (docs/ROBUSTNESS.md): input size, token count and
// identifier length are charged against an InputLimits budget, and
// every rejection is a typed InputRejected/LimitExceeded carrying the
// offending line *and column*.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/limits.hpp"

namespace gpuperf::ptx {

enum class TokenKind {
  kIdentifier,  // mov.u32, %r1, %tid.x, .param, LBB0_1, @, !
  kNumber,      // 42, -7, 0f3F800000
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kPlus,
  kAt,
  kBang,
  kLess,
  kGreater,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
  int col = 0;  // 1-based column of the token's first character

  bool is(TokenKind k) const { return kind == k; }
  bool is_ident(const char* s) const {
    return kind == TokenKind::kIdentifier && text == s;
  }
};

/// Tokenize PTX text; throws InputRejected (a CheckError) with line and
/// column on bad characters, and LimitExceeded when the text blows the
/// byte / token / identifier budget.  Comments (// and /* */) are
/// stripped.
std::vector<Token> lex(const std::string& text,
                       const InputLimits& limits = InputLimits::defaults());

const char* token_kind_name(TokenKind kind);

}  // namespace gpuperf::ptx
