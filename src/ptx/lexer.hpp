// Tokenizer for the PTX textual subset.  Identifiers keep their dots
// ("mad.lo.s32", "%tid.x") — instruction-name decomposition happens in
// the parser, which has the context to do it right.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpuperf::ptx {

enum class TokenKind {
  kIdentifier,  // mov.u32, %r1, %tid.x, .param, LBB0_1, @, !
  kNumber,      // 42, -7, 0f3F800000
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kPlus,
  kAt,
  kBang,
  kLess,
  kGreater,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;

  bool is(TokenKind k) const { return kind == k; }
  bool is_ident(const char* s) const {
    return kind == TokenKind::kIdentifier && text == s;
  }
};

/// Tokenize PTX text; throws CheckError with a line number on bad
/// characters.  Comments (// and /* */) are stripped.
std::vector<Token> lex(const std::string& text);

const char* token_kind_name(TokenKind kind);

}  // namespace gpuperf::ptx
