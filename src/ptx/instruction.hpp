// Operand and Instruction representations plus their textual PTX
// rendering.  The generator emits these, the parser reconstructs them,
// and the round trip is covered by tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ptx/isa.hpp"

namespace gpuperf::ptx {

/// Virtual register reference, e.g. "%r12", "%rd3", "%f7", "%p1".
/// `id` is the kernel-local interned index assigned by
/// PtxKernel::intern_registers(); -1 until interning runs.  Equality
/// ignores ids so parse/print round trips compare structurally.
struct RegOperand {
  std::string name;
  int id = -1;
  bool operator==(const RegOperand& o) const { return name == o.name; }
};

/// Integer or floating immediate.
struct ImmOperand {
  double value = 0.0;
  bool is_float = false;
  std::int64_t ivalue() const { return static_cast<std::int64_t>(value); }
  bool operator==(const ImmOperand&) const = default;
};

/// %tid.x and friends.
struct SpecialOperand {
  SpecialReg reg = SpecialReg::kTidX;
  bool operator==(const SpecialOperand&) const = default;
};

/// Memory operand [base+offset] for ld/st; base is a register name or,
/// for ld.param, a kernel parameter name.  `base_reg_id` is the
/// interned id when base is a register, -1 otherwise (parameter base
/// or not yet interned).  Equality ignores ids.
struct MemOperand {
  std::string base;
  std::int64_t offset = 0;
  int base_reg_id = -1;
  bool operator==(const MemOperand& o) const {
    return base == o.base && offset == o.offset;
  }
};

/// Branch target.
struct LabelOperand {
  std::string name;
  bool operator==(const LabelOperand&) const = default;
};

using Operand = std::variant<RegOperand, ImmOperand, SpecialOperand,
                             MemOperand, LabelOperand>;

std::string operand_to_string(const Operand& op);

/// One PTX instruction.  Guard predicates render as "@%p" / "@!%p".
struct Instruction {
  Opcode opcode = Opcode::kMov;
  PtxType type = PtxType::kU32;
  StateSpace space = StateSpace::kNone;
  std::optional<CompareOp> cmp;  // setp only

  std::vector<Operand> dsts;  // setp has 1 pred dst; st has none
  std::vector<Operand> srcs;

  std::string guard;          // predicate register name, empty = none
  bool guard_negated = false;
  int guard_id = -1;          // interned id of guard, -1 = none/uninterned

  /// Registers written / read (guard included in reads).  Special
  /// registers and parameters are not virtual registers and are
  /// excluded.
  std::vector<std::string> defs() const;
  std::vector<std::string> uses() const;

  /// Interned-id variants of defs()/uses(); valid only after
  /// PtxKernel::intern_registers() has stamped ids into operands.
  std::vector<int> def_ids() const;
  std::vector<int> use_ids() const;

  /// Allocation-free interned-id iteration for graph construction hot
  /// loops: visits exactly the ids def_ids()/use_ids() would return, in
  /// the same order, without materializing a vector.
  template <typename Fn>
  void for_each_def_id(Fn&& fn) const {
    for (const Operand& d : dsts)
      if (const auto* r = std::get_if<RegOperand>(&d)) fn(r->id);
  }
  template <typename Fn>
  void for_each_use_id(Fn&& fn) const {
    for (const Operand& s : srcs) {
      if (const auto* r = std::get_if<RegOperand>(&s)) {
        fn(r->id);
      } else if (const auto* m = std::get_if<MemOperand>(&s)) {
        if (m->base_reg_id >= 0) fn(m->base_reg_id);
      }
    }
    if (guard_id >= 0) fn(guard_id);
  }

  bool is_branch() const { return opcode == Opcode::kBra; }
  bool is_exit() const { return opcode == Opcode::kRet; }

  std::string to_string() const;
};

}  // namespace gpuperf::ptx
