// Operand and Instruction representations plus their textual PTX
// rendering.  The generator emits these, the parser reconstructs them,
// and the round trip is covered by tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ptx/isa.hpp"

namespace gpuperf::ptx {

/// Virtual register reference, e.g. "%r12", "%rd3", "%f7", "%p1".
struct RegOperand {
  std::string name;
  bool operator==(const RegOperand&) const = default;
};

/// Integer or floating immediate.
struct ImmOperand {
  double value = 0.0;
  bool is_float = false;
  std::int64_t ivalue() const { return static_cast<std::int64_t>(value); }
  bool operator==(const ImmOperand&) const = default;
};

/// %tid.x and friends.
struct SpecialOperand {
  SpecialReg reg = SpecialReg::kTidX;
  bool operator==(const SpecialOperand&) const = default;
};

/// Memory operand [base+offset] for ld/st; base is a register name or,
/// for ld.param, a kernel parameter name.
struct MemOperand {
  std::string base;
  std::int64_t offset = 0;
  bool operator==(const MemOperand&) const = default;
};

/// Branch target.
struct LabelOperand {
  std::string name;
  bool operator==(const LabelOperand&) const = default;
};

using Operand = std::variant<RegOperand, ImmOperand, SpecialOperand,
                             MemOperand, LabelOperand>;

std::string operand_to_string(const Operand& op);

/// One PTX instruction.  Guard predicates render as "@%p" / "@!%p".
struct Instruction {
  Opcode opcode = Opcode::kMov;
  PtxType type = PtxType::kU32;
  StateSpace space = StateSpace::kNone;
  std::optional<CompareOp> cmp;  // setp only

  std::vector<Operand> dsts;  // setp has 1 pred dst; st has none
  std::vector<Operand> srcs;

  std::string guard;          // predicate register name, empty = none
  bool guard_negated = false;

  /// Registers written / read (guard included in reads).  Special
  /// registers and parameters are not virtual registers and are
  /// excluded.
  std::vector<std::string> defs() const;
  std::vector<std::string> uses() const;

  bool is_branch() const { return opcode == Opcode::kBra; }
  bool is_exit() const { return opcode == Opcode::kRet; }

  std::string to_string() const;
};

}  // namespace gpuperf::ptx
