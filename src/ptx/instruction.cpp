#include "ptx/instruction.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace gpuperf::ptx {

std::string operand_to_string(const Operand& op) {
  struct Visitor {
    std::string operator()(const RegOperand& r) const { return r.name; }
    std::string operator()(const ImmOperand& i) const {
      char buf[64];
      if (i.is_float)
        std::snprintf(buf, sizeof(buf), "0f%08X",
                      [&] {
                        const float f = static_cast<float>(i.value);
                        std::uint32_t bits;
                        static_assert(sizeof(bits) == sizeof(f));
                        __builtin_memcpy(&bits, &f, sizeof(bits));
                        return bits;
                      }());
      else
        std::snprintf(buf, sizeof(buf), "%" PRId64, i.ivalue());
      return buf;
    }
    std::string operator()(const SpecialOperand& s) const {
      return special_reg_name(s.reg);
    }
    std::string operator()(const MemOperand& m) const {
      std::ostringstream os;
      os << '[' << m.base;
      if (m.offset != 0) os << '+' << m.offset;
      os << ']';
      return os.str();
    }
    std::string operator()(const LabelOperand& l) const { return l.name; }
  };
  return std::visit(Visitor{}, op);
}

namespace {

void collect_reg(const Operand& op, std::vector<std::string>& out,
                 bool memory_bases) {
  if (const auto* r = std::get_if<RegOperand>(&op)) {
    out.push_back(r->name);
  } else if (memory_bases) {
    if (const auto* m = std::get_if<MemOperand>(&op)) {
      // A register base starts with '%'; a parameter name does not.
      if (!m->base.empty() && m->base.front() == '%') out.push_back(m->base);
    }
  }
}

}  // namespace

std::vector<std::string> Instruction::defs() const {
  std::vector<std::string> out;
  for (const auto& d : dsts) collect_reg(d, out, /*memory_bases=*/false);
  return out;
}

std::vector<std::string> Instruction::uses() const {
  std::vector<std::string> out;
  for (const auto& s : srcs) collect_reg(s, out, /*memory_bases=*/true);
  // A store's address register lives in dsts position for st [addr], val
  // encodings; we keep addresses in srcs, so only the guard remains.
  if (!guard.empty()) out.push_back(guard);
  return out;
}

std::vector<int> Instruction::def_ids() const {
  std::vector<int> out;
  for_each_def_id([&](int id) { out.push_back(id); });
  return out;
}

std::vector<int> Instruction::use_ids() const {
  std::vector<int> out;
  for_each_use_id([&](int id) { out.push_back(id); });
  return out;
}

std::string Instruction::to_string() const {
  std::ostringstream os;
  if (!guard.empty()) os << '@' << (guard_negated ? "!" : "") << guard << ' ';

  os << opcode_name(opcode);
  if (cmp) os << '.' << compare_name(*cmp);
  if (space != StateSpace::kNone) os << '.' << space_suffix(space);
  const bool typed = opcode != Opcode::kBra && opcode != Opcode::kRet &&
                     opcode != Opcode::kBar;
  if (typed) os << '.' << type_suffix(type);

  bool first = true;
  auto emit = [&](const Operand& op) {
    os << (first ? " \t" : ", ");
    first = false;
    os << operand_to_string(op);
  };
  for (const auto& d : dsts) emit(d);
  for (const auto& s : srcs) emit(s);
  os << ';';
  return os.str();
}

}  // namespace gpuperf::ptx
