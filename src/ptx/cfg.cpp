#include "ptx/cfg.hpp"

#include <algorithm>
#include <set>

#include "common/check.hpp"

namespace gpuperf::ptx {

Cfg Cfg::build(const PtxKernel& kernel) {
  const auto& ins = kernel.instructions;
  GP_CHECK_MSG(!ins.empty(), "CFG over empty kernel " << kernel.name);

  // Leaders: entry, every label target, every instruction after a
  // branch or ret.
  std::set<std::size_t> leaders;
  leaders.insert(0);
  for (const auto& [label, index] : kernel.labels)
    if (index < ins.size()) leaders.insert(index);
  for (std::size_t i = 0; i < ins.size(); ++i)
    if (ins[i].is_branch() || ins[i].is_exit())
      if (i + 1 < ins.size()) leaders.insert(i + 1);

  Cfg cfg;
  cfg.block_of_.assign(ins.size(), 0);
  std::vector<std::size_t> leader_list(leaders.begin(), leaders.end());
  for (std::size_t b = 0; b < leader_list.size(); ++b) {
    BasicBlock block;
    block.first = leader_list[b];
    block.last = (b + 1 < leader_list.size() ? leader_list[b + 1]
                                             : ins.size()) -
                 1;
    for (std::size_t i = block.first; i <= block.last; ++i)
      cfg.block_of_[i] = b;
    cfg.blocks_.push_back(block);
  }

  // Edges.
  for (std::size_t b = 0; b < cfg.blocks_.size(); ++b) {
    BasicBlock& block = cfg.blocks_[b];
    const Instruction& term = ins[block.last];
    auto link = [&](std::size_t to) {
      block.succs.push_back(to);
      cfg.blocks_[to].preds.push_back(b);
    };
    if (term.is_exit()) continue;
    if (term.is_branch()) {
      GP_CHECK_MSG(term.srcs.size() == 1, "bra needs exactly one target");
      const auto* label = std::get_if<LabelOperand>(&term.srcs.front());
      GP_CHECK_MSG(label != nullptr, "bra target is not a label");
      const std::size_t target_index = kernel.label_target(label->name);
      GP_CHECK_MSG(target_index < ins.size(),
                   "branch to end of kernel " << kernel.name);
      link(cfg.block_of_[target_index]);
      if (!term.guard.empty() && b + 1 < cfg.blocks_.size()) link(b + 1);
    } else {
      GP_CHECK_MSG(b + 1 < cfg.blocks_.size(),
                   "kernel " << kernel.name << " falls off the end");
      link(b + 1);
    }
  }
  return cfg;
}

const BasicBlock& Cfg::block(std::size_t i) const {
  GP_CHECK(i < blocks_.size());
  return blocks_[i];
}

std::size_t Cfg::block_of(std::size_t instruction_index) const {
  GP_CHECK(instruction_index < block_of_.size());
  return block_of_[instruction_index];
}

std::vector<std::size_t> Cfg::conditional_blocks() const {
  std::vector<std::size_t> out;
  for (std::size_t b = 0; b < blocks_.size(); ++b)
    if (blocks_[b].succs.size() > 1) out.push_back(b);
  return out;
}

bool Cfg::has_loops() const {
  // A back edge in instruction order implies a cycle here because block
  // ids follow instruction order.
  for (std::size_t b = 0; b < blocks_.size(); ++b)
    for (std::size_t s : blocks_[b].succs)
      if (s <= b) return true;
  return false;
}

}  // namespace gpuperf::ptx
