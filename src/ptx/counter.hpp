// Model-level dynamic instruction counting: parses the generated PTX,
// builds one symbolic executor per kernel, runs every launch, and
// aggregates — this is the "total number of PTX instructions" predictor
// p of the paper's training vector d = (y, p, c1..cm, t).
//
// Fast path (the t_dca term of the paper's T_est = t_dca + n*t_pm):
//   - the default constructor shares one process-wide parsed kernel
//     library and its per-kernel executors (parse + slice once, ever);
//   - count_launch() results are memoized in a process-wide sharded
//     single-flight cache keyed on (module fingerprint, kernel, grid,
//     block, slice-relevant parameter values) — launches differing only
//     in buffer pointers hit the same entry;
//   - count() fans independent launches across ThreadPool::shared()
//     with a deterministic index-ordered reduction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ptx/codegen.hpp"
#include "ptx/symexec.hpp"

namespace gpuperf::ptx {

struct ModelInstructionProfile {
  std::string model_name;
  std::int64_t total_instructions = 0;
  std::array<std::int64_t, kOpClassCount> by_class{};
  std::int64_t total_threads = 0;
  std::int64_t launch_count = 0;
  /// Per-launch totals, parallel to CompiledModel::launches.
  std::vector<std::int64_t> per_launch;
  /// Per-launch per-class counts.
  std::vector<std::array<std::int64_t, kOpClassCount>> per_launch_class;
};

class InstructionCounter {
 public:
  /// Binds to the process-wide shared kernel library analysis (built on
  /// first use); construction is O(1) afterwards — no PTX re-parse, no
  /// slice recomputation.
  InstructionCounter();

  /// Analyze a caller-provided, already-parsed module instead (no text
  /// round trip).  The analysis is private to this counter but launch
  /// results still share the process-wide memo (the key includes the
  /// module fingerprint, so distinct modules never collide).
  explicit InstructionCounter(const PtxModule& module);

  /// `deadline` spans the whole model (every launch shares it); expiry
  /// throws AnalysisTimeout from inside the symbolic executor.  When
  /// the model has enough launches the per-launch work is spread across
  /// ThreadPool::shared(); each task charges a private deadline copy
  /// and the totals are folded back afterwards, so step accounting
  /// matches the serial path.
  ModelInstructionProfile count(const CompiledModel& model,
                                const Deadline& deadline = {}) const;

  /// Counts for a single launch (exposed for tests and benches).
  /// Memoized: concurrent calls with the same key execute the symbolic
  /// run once (single-flight); a run that throws (timeout, unsupported
  /// fragment) is never cached and later calls retry.
  ExecutionCounts count_launch(const KernelLaunch& launch,
                               const Deadline& deadline = {}) const;

  /// Cumulative process-wide fast-path statistics.
  struct MemoStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::uint64_t parallel_tasks = 0;
  };
  static MemoStats memo_stats();

  /// Drop every memoized launch result (benchmarks; tests needing a
  /// cold cache).  Hit/miss/parallel counters keep accumulating.
  static void reset_memo();

 private:
  struct Library;  // parsed module + executors + fingerprint
  std::shared_ptr<const Library> lib_;
};

}  // namespace gpuperf::ptx
