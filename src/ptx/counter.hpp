// Model-level dynamic instruction counting: parses the generated PTX,
// builds one symbolic executor per kernel, runs every launch, and
// aggregates — this is the "total number of PTX instructions" predictor
// p of the paper's training vector d = (y, p, c1..cm, t).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ptx/codegen.hpp"
#include "ptx/symexec.hpp"

namespace gpuperf::ptx {

struct ModelInstructionProfile {
  std::string model_name;
  std::int64_t total_instructions = 0;
  std::array<std::int64_t, kOpClassCount> by_class{};
  std::int64_t total_threads = 0;
  std::int64_t launch_count = 0;
  /// Per-launch totals, parallel to CompiledModel::launches.
  std::vector<std::int64_t> per_launch;
  /// Per-launch per-class counts.
  std::vector<std::array<std::int64_t, kOpClassCount>> per_launch_class;
};

class InstructionCounter {
 public:
  /// Analyze the module's kernels once; count() may then be called for
  /// any CompiledModel over the same kernel library.
  InstructionCounter();

  /// `deadline` spans the whole model (every launch shares it); expiry
  /// throws AnalysisTimeout from inside the symbolic executor.
  ModelInstructionProfile count(const CompiledModel& model,
                                const Deadline& deadline = {}) const;

  /// Counts for a single launch (exposed for tests and benches).
  ExecutionCounts count_launch(const KernelLaunch& launch,
                               const Deadline& deadline = {}) const;

 private:
  PtxModule module_;
  std::map<std::string, SymbolicExecutor> executors_;
};

}  // namespace gpuperf::ptx
