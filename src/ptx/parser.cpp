#include "ptx/parser.hpp"

#include <cstdlib>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "ptx/lexer.hpp"

namespace gpuperf::ptx {

namespace {

class Parser {
 public:
  Parser(const std::string& text, const InputLimits& limits)
      : tokens_(lex(text, limits)), budget_(limits) {}

  PtxModule parse() {
    PtxModule mod;
    while (!peek().is(TokenKind::kEnd)) {
      const Token& t = peek();
      if (t.is_ident(".version")) {
        next();
        mod.version = expect(TokenKind::kNumber).text;
      } else if (t.is_ident(".target")) {
        next();
        mod.target = expect(TokenKind::kIdentifier).text;
      } else if (t.is_ident(".address_size")) {
        next();
        mod.address_size = static_cast<int>(number(expect(
            TokenKind::kNumber)));
      } else if (t.is_ident(".visible") || t.is_ident(".entry")) {
        budget_.charge_kernels();
        mod.kernels.push_back(parse_kernel());
      } else {
        fail("unexpected token '" + t.text + "'", t);
      }
    }
    return mod;
  }

 private:
  [[noreturn]] void fail(const std::string& msg, const Token& at) const {
    std::ostringstream os;
    os << "PTX parse error at line " << at.line << ", col " << at.col
       << ": " << msg;
    throw InputRejected(os.str());
  }

  /// Integer token → value, rethrowing any parse failure with the
  /// token's position (never a bare "not an integer" without context).
  long long number(const Token& t) const {
    try {
      return parse_int(t.text);
    } catch (const CheckError&) {
      fail("bad number '" + t.text + "'", t);
    }
  }

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Token next() {
    const Token t = peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }

  Token expect(TokenKind kind) {
    const Token t = next();
    if (t.kind != kind)
      fail(std::string("expected ") + token_kind_name(kind) + ", got '" +
               t.text + "'",
           t);
    return t;
  }

  Token expect_ident(const char* text) {
    const Token t = next();
    if (!t.is_ident(text))
      fail(std::string("expected '") + text + "', got '" + t.text + "'",
           t);
    return t;
  }

  PtxType expect_type() {
    const Token t = expect(TokenKind::kIdentifier);
    if (t.text.empty() || t.text.front() != '.')
      fail("expected a .type suffix, got '" + t.text + "'", t);
    const auto type = type_from_suffix(t.text.substr(1));
    if (!type) fail("unknown type '" + t.text + "'", t);
    return *type;
  }

  PtxKernel parse_kernel() {
    PtxKernel kernel;
    if (peek().is_ident(".visible")) next();
    expect_ident(".entry");
    kernel.name = expect(TokenKind::kIdentifier).text;

    expect(TokenKind::kLParen);
    while (!peek().is(TokenKind::kRParen)) {
      if (peek().is(TokenKind::kEnd))
        fail("unterminated parameter list", peek());
      expect_ident(".param");
      KernelParam param;
      param.type = expect_type();
      param.name = expect(TokenKind::kIdentifier).text;
      param.is_pointer = param.type == PtxType::kU64;
      enforce_limit(kernel.params.size() + 1, budget_.limits().max_params,
                    "kernel parameters");
      kernel.params.push_back(std::move(param));
      if (peek().is(TokenKind::kComma)) next();
    }
    expect(TokenKind::kRParen);

    if (peek().is_ident(".reqntid")) {
      next();
      kernel.reqntid = static_cast<int>(number(expect(TokenKind::kNumber)));
      while (peek().is(TokenKind::kComma)) {
        next();
        expect(TokenKind::kNumber);
      }
    }

    expect(TokenKind::kLBrace);
    while (!peek().is(TokenKind::kRBrace)) {
      const Token& t = peek();
      if (t.is(TokenKind::kEnd)) fail("unterminated kernel body", t);
      if (t.is_ident(".reg")) {
        next();
        RegDecl rd;
        rd.type = expect_type();
        rd.prefix = expect(TokenKind::kIdentifier).text;
        expect(TokenKind::kLess);
        rd.count = static_cast<int>(number(expect(TokenKind::kNumber)));
        if (rd.count < 0)
          fail("negative register count", t);
        expect(TokenKind::kGreater);
        expect(TokenKind::kSemicolon);
        kernel.reg_decls.push_back(std::move(rd));
      } else if (t.is_ident(".shared")) {
        next();
        if (peek().is_ident(".align")) {
          next();
          expect(TokenKind::kNumber);
        }
        expect_ident(".b8");
        expect(TokenKind::kIdentifier);  // buffer name
        expect(TokenKind::kLBracket);
        kernel.shared_bytes = number(expect(TokenKind::kNumber));
        expect(TokenKind::kRBracket);
        expect(TokenKind::kSemicolon);
      } else if (t.kind == TokenKind::kIdentifier &&
                 peek(1).is(TokenKind::kColon)) {
        kernel.labels[t.text] = kernel.instructions.size();
        next();
        next();
      } else {
        budget_.charge_instructions();
        kernel.instructions.push_back(parse_instruction());
      }
    }
    expect(TokenKind::kRBrace);
    kernel.intern_registers();
    return kernel;
  }

  /// Decompose a dotted instruction mnemonic like "mad.lo.s32",
  /// "setp.lt.u32", "ld.global.f32", "cvt.rn.f32.s32".
  void decode_mnemonic(const Token& mnemonic_token, Instruction& out) {
    const std::string& mnemonic = mnemonic_token.text;
    const std::vector<std::string> parts = split(mnemonic, '.');
    const std::string& head = parts[0];  // split() never returns empty
    std::size_t i = 1;

    auto take_type = [&](bool required) {
      if (i < parts.size()) {
        if (const auto t = type_from_suffix(parts[i])) {
          out.type = *t;
          ++i;
          return;
        }
      }
      if (required)
        fail("missing type suffix in '" + mnemonic + "'", mnemonic_token);
    };

    if (head == "setp") {
      out.opcode = Opcode::kSetp;
      if (i >= parts.size())
        fail("setp without compare op", mnemonic_token);
      const auto cmp = compare_from_name(parts[i]);
      if (!cmp)
        fail("bad compare op '" + parts[i] + "'", mnemonic_token);
      out.cmp = *cmp;
      ++i;
      take_type(true);
    } else if (head == "ld" || head == "st") {
      out.opcode = head == "ld" ? Opcode::kLd : Opcode::kSt;
      if (i < parts.size()) {
        if (const auto sp = space_from_suffix(parts[i])) {
          out.space = *sp;
          ++i;
        }
      }
      if (i < parts.size() && (parts[i] == "nc" || parts[i] == "cg" ||
                               parts[i] == "ca" || parts[i] == "wb"))
        ++i;  // cache hints
      take_type(true);
    } else if (head == "mad") {
      out.opcode = Opcode::kMad;
      if (i < parts.size() && (parts[i] == "lo" || parts[i] == "wide")) ++i;
      take_type(true);
    } else if (head == "fma") {
      out.opcode = Opcode::kFma;
      if (i < parts.size() && (parts[i] == "rn" || parts[i] == "rz")) ++i;
      take_type(true);
    } else if (head == "mul") {
      out.opcode = Opcode::kMul;
      if (i < parts.size() && parts[i] == "lo") {
        out.opcode = Opcode::kMulLo;
        ++i;
      } else if (i < parts.size() && parts[i] == "wide") {
        out.opcode = Opcode::kMulWide;
        ++i;
      }
      take_type(true);
    } else if (head == "div" || head == "rcp" || head == "sqrt" ||
               head == "ex2" || head == "lg2") {
      if (head == "div") out.opcode = Opcode::kDiv;
      if (head == "rcp") out.opcode = Opcode::kRcp;
      if (head == "sqrt") out.opcode = Opcode::kSqrt;
      if (head == "ex2") out.opcode = Opcode::kEx2;
      if (head == "lg2") out.opcode = Opcode::kLg2;
      while (i < parts.size() &&
             (parts[i] == "approx" || parts[i] == "rn" || parts[i] == "full"))
        ++i;
      take_type(true);
    } else if (head == "bra") {
      out.opcode = Opcode::kBra;
      // ".uni" suffix carries no semantics for a scalar analysis.
    } else if (head == "ret") {
      out.opcode = Opcode::kRet;
    } else if (head == "bar") {
      out.opcode = Opcode::kBar;
    } else if (head == "cvta") {
      out.opcode = Opcode::kCvta;
      while (i < parts.size() && !type_from_suffix(parts[i])) ++i;
      take_type(true);
    } else if (head == "cvt") {
      out.opcode = Opcode::kCvt;
      while (i < parts.size() &&
             (parts[i] == "rn" || parts[i] == "rz" || parts[i] == "rni" ||
              parts[i] == "rzi" || parts[i] == "sat" || parts[i] == "ftz"))
        ++i;
      take_type(true);   // destination type
      take_type(false);  // source type (kept implicit)
    } else {
      const auto op = opcode_from_name(head);
      if (!op) fail("unknown opcode '" + head + "'", mnemonic_token);
      out.opcode = *op;
      take_type(out.opcode != Opcode::kNot);
    }
  }

  Operand parse_operand() {
    const Token& t = peek();
    if (t.is(TokenKind::kLBracket)) {
      next();
      MemOperand mem;
      mem.base = expect(TokenKind::kIdentifier).text;
      if (peek().is(TokenKind::kPlus)) {
        next();
        mem.offset = number(expect(TokenKind::kNumber));
      }
      expect(TokenKind::kRBracket);
      return mem;
    }
    if (t.is(TokenKind::kNumber)) {
      next();
      ImmOperand imm;
      if (starts_with(t.text, "0f") || starts_with(t.text, "0F")) {
        const std::uint32_t bits = static_cast<std::uint32_t>(
            std::strtoul(t.text.c_str() + 2, nullptr, 16));
        float f;
        __builtin_memcpy(&f, &bits, sizeof(f));
        imm.value = f;
        imm.is_float = true;
      } else if (starts_with(t.text, "0d") || starts_with(t.text, "0D")) {
        const std::uint64_t bits =
            std::strtoull(t.text.c_str() + 2, nullptr, 16);
        double d;
        __builtin_memcpy(&d, &bits, sizeof(d));
        imm.value = d;
        imm.is_float = true;
      } else if (t.text.find('.') != std::string::npos) {
        try {
          imm.value = parse_double(t.text);
        } catch (const CheckError&) {
          fail("bad number '" + t.text + "'", t);
        }
        imm.is_float = true;
      } else {
        imm.value = static_cast<double>(number(t));
      }
      return imm;
    }
    const Token ident = expect(TokenKind::kIdentifier);
    if (const auto sr = special_reg_from_name(ident.text))
      return SpecialOperand{*sr};
    if (!ident.text.empty() && ident.text.front() == '%')
      return RegOperand{ident.text};
    return LabelOperand{ident.text};
  }

  Instruction parse_instruction() {
    Instruction inst;
    if (peek().is(TokenKind::kAt)) {
      next();
      if (peek().is(TokenKind::kBang)) {
        next();
        inst.guard_negated = true;
      }
      inst.guard = expect(TokenKind::kIdentifier).text;
    }

    const Token mnemonic = expect(TokenKind::kIdentifier);
    decode_mnemonic(mnemonic, inst);

    std::vector<Operand> operands;
    while (!peek().is(TokenKind::kSemicolon)) {
      if (peek().is(TokenKind::kEnd))
        fail("unterminated instruction (missing ';')", peek());
      enforce_limit(operands.size() + 1, budget_.limits().max_operands,
                    "instruction operands");
      operands.push_back(parse_operand());
      if (peek().is(TokenKind::kComma)) next();
    }
    expect(TokenKind::kSemicolon);

    // Assign destination/source roles by opcode shape.
    switch (inst.opcode) {
      case Opcode::kSt:
      case Opcode::kBra:
      case Opcode::kRet:
      case Opcode::kBar:
        inst.srcs = std::move(operands);
        break;
      default:
        if (!operands.empty()) {
          inst.dsts.push_back(operands.front());
          inst.srcs.assign(operands.begin() + 1, operands.end());
        }
        break;
    }
    return inst;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ResourceBudget budget_;
};

}  // namespace

PtxModule parse_ptx(const std::string& text, const InputLimits& limits) {
  try {
    return Parser(text, limits).parse();
  } catch (const CheckError&) {
    throw;  // InputRejected / LimitExceeded / GP_CHECK — already typed
  } catch (const std::out_of_range& e) {
    // Belt and braces: no container/string access on a truncated or
    // malformed input may escape as a raw out_of_range.
    throw InputRejected(std::string("PTX parse error: truncated input (") +
                        e.what() + ")");
  } catch (const std::length_error& e) {
    throw InputRejected(std::string("PTX parse error: oversized input (") +
                        e.what() + ")");
  }
}

}  // namespace gpuperf::ptx
