#include "ptx/verifier.hpp"

#include <cctype>
#include <sstream>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace gpuperf::ptx {

namespace {

class KernelVerifier {
 public:
  explicit KernelVerifier(const PtxKernel& kernel) : kernel_(kernel) {}

  std::vector<VerifyIssue> run() {
    check_kernel_shape();
    for (std::size_t i = 0; i < kernel_.instructions.size(); ++i)
      check_instruction(i, kernel_.instructions[i]);
    check_labels();
    return std::move(issues_);
  }

 private:
  void issue(std::size_t index, const std::string& message) {
    issues_.push_back(VerifyIssue{index, message});
  }

  void check_kernel_shape() {
    if (kernel_.name.empty())
      issue(VerifyIssue::kKernelLevel, "kernel has no name");
    if (kernel_.instructions.empty()) {
      issue(VerifyIssue::kKernelLevel, "kernel has no instructions");
      return;
    }
    // Control flow must not fall off the end: the final instruction is
    // a ret or an unconditional branch.
    const Instruction& last = kernel_.instructions.back();
    if (!last.is_exit() && !(last.is_branch() && last.guard.empty()))
      issue(kernel_.instructions.size() - 1,
            "kernel can fall off the end (last instruction is neither ret "
            "nor an unconditional bra)");
    bool uses_shared = false;
    for (const auto& inst : kernel_.instructions)
      if (inst.space == StateSpace::kShared) uses_shared = true;
    if (uses_shared && kernel_.shared_bytes <= 0)
      issue(VerifyIssue::kKernelLevel,
            "shared-memory accesses without a .shared declaration");
  }

  /// Split "%rd12" into prefix "%rd" and index 12; false for
  /// non-register names.
  static bool split_register(const std::string& name, std::string& prefix,
                             int& index) {
    if (name.size() < 2 || name.front() != '%') return false;
    std::size_t digits = name.size();
    while (digits > 1 &&
           std::isdigit(static_cast<unsigned char>(name[digits - 1])))
      --digits;
    if (digits == name.size()) return false;  // no numeric suffix
    prefix = name.substr(0, digits);
    index = static_cast<int>(parse_int(name.substr(digits)));
    return true;
  }

  void check_register(std::size_t i, const std::string& name,
                      bool must_be_pred) {
    std::string prefix;
    int index = 0;
    if (!split_register(name, prefix, index)) {
      issue(i, "'" + name + "' is not a well-formed register name");
      return;
    }
    for (const RegDecl& decl : kernel_.reg_decls) {
      if (decl.prefix != prefix) continue;
      if (index >= decl.count)
        issue(i, "register " + name + " exceeds declared range " + prefix +
                     "<" + std::to_string(decl.count) + ">");
      if (must_be_pred && decl.type != PtxType::kPred)
        issue(i, "guard " + name + " is not a predicate register");
      return;
    }
    issue(i, "register " + name + " has no matching .reg declaration");
  }

  void check_operand(std::size_t i, const Operand& op) {
    if (const auto* reg = std::get_if<RegOperand>(&op)) {
      check_register(i, reg->name, false);
    } else if (const auto* mem = std::get_if<MemOperand>(&op)) {
      if (!mem->base.empty() && mem->base.front() == '%') {
        check_register(i, mem->base, false);
      } else if (kernel_.find_param(mem->base) == nullptr) {
        issue(i, "memory base '" + mem->base +
                     "' is neither a register nor a declared parameter");
      }
      if (mem->offset < 0) issue(i, "negative memory offset");
    }
  }

  void check_instruction(std::size_t i, const Instruction& inst) {
    if (!inst.guard.empty()) check_register(i, inst.guard, true);

    for (const auto& d : inst.dsts) {
      if (!std::holds_alternative<RegOperand>(d))
        issue(i, "destination operand is not a register");
      else
        check_operand(i, d);
    }
    for (const auto& s : inst.srcs) check_operand(i, s);

    switch (inst.opcode) {
      case Opcode::kSetp:
        if (!inst.cmp.has_value()) issue(i, "setp without compare op");
        if (inst.dsts.size() != 1 || inst.srcs.size() != 2)
          issue(i, "setp needs 1 destination and 2 sources");
        break;
      case Opcode::kBra: {
        if (inst.srcs.size() != 1 ||
            !std::holds_alternative<LabelOperand>(inst.srcs.front())) {
          issue(i, "bra needs exactly one label operand");
          break;
        }
        const auto& label = std::get<LabelOperand>(inst.srcs.front());
        if (kernel_.labels.find(label.name) == kernel_.labels.end())
          issue(i, "branch to undefined label '" + label.name + "'");
        break;
      }
      case Opcode::kLd:
        if (inst.dsts.size() != 1 || inst.srcs.empty() ||
            !std::holds_alternative<MemOperand>(inst.srcs.front()))
          issue(i, "ld needs a register destination and memory source");
        break;
      case Opcode::kSt:
        if (!inst.dsts.empty() || inst.srcs.size() != 2 ||
            !std::holds_alternative<MemOperand>(inst.srcs.front()))
          issue(i, "st needs a memory destination and a value source");
        break;
      case Opcode::kMad:
      case Opcode::kFma:
        if (inst.srcs.size() != 3) issue(i, "mad/fma need 3 sources");
        break;
      case Opcode::kRet:
      case Opcode::kBar:
        if (!inst.dsts.empty() || !inst.srcs.empty())
          issue(i, "ret/bar take no operands");
        break;
      case Opcode::kSelp:
        if (inst.srcs.size() != 3) issue(i, "selp needs 3 sources");
        break;
      default:
        if (inst.dsts.size() != 1)
          issue(i, std::string(opcode_name(inst.opcode)) +
                       " needs exactly one destination");
        if (inst.srcs.empty())
          issue(i, std::string(opcode_name(inst.opcode)) +
                       " needs at least one source");
        break;
    }
  }

  void check_labels() {
    for (const auto& [name, index] : kernel_.labels)
      if (index > kernel_.instructions.size())
        issue(VerifyIssue::kKernelLevel,
              "label '" + name + "' points past the end");
  }

  const PtxKernel& kernel_;
  std::vector<VerifyIssue> issues_;
};

}  // namespace

std::vector<VerifyIssue> verify_kernel(const PtxKernel& kernel) {
  return KernelVerifier(kernel).run();
}

std::vector<VerifyIssue> verify_module(const PtxModule& module) {
  std::vector<VerifyIssue> all;
  for (const auto& kernel : module.kernels) {
    for (VerifyIssue issue : verify_kernel(kernel)) {
      issue.message = kernel.name + ": " + issue.message;
      all.push_back(std::move(issue));
    }
  }
  return all;
}

void verify_or_throw(const PtxModule& module) {
  const auto issues = verify_module(module);
  GP_CHECK_MSG(issues.empty(),
               "PTX verification failed: " << issues.front().message << " ("
                                           << issues.size() << " issue(s))");
}

}  // namespace gpuperf::ptx
