#include "ptx/lexer.hpp"

#include <cctype>
#include <sstream>

namespace gpuperf::ptx {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == '%' || c == '.' || c == '$';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '$' || c == '%';
}

[[noreturn]] void lex_fail(const std::string& msg, int line, int col) {
  std::ostringstream os;
  os << "PTX lex error at line " << line << ", col " << col << ": " << msg;
  throw InputRejected(os.str());
}

}  // namespace

std::vector<Token> lex(const std::string& text, const InputLimits& limits) {
  enforce_limit(text.size(), limits.max_ptx_bytes, "PTX input bytes");

  std::vector<Token> tokens;
  ResourceBudget budget(limits);
  int line = 1;
  std::size_t i = 0;
  std::size_t line_start = 0;  // offset of the current line's first char
  const std::size_t n = text.size();

  const auto col_of = [&](std::size_t offset) {
    return static_cast<int>(offset - line_start) + 1;
  };
  auto push = [&](TokenKind kind, std::string t, std::size_t at) {
    budget.charge_tokens();
    tokens.push_back(Token{kind, std::move(t), line, col_of(at)});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t open = i;
      const int open_line = line;
      const int open_col = col_of(open);
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          ++line;
          line_start = i + 1;
        }
        ++i;
      }
      if (i + 1 >= n)
        lex_fail("unterminated block comment", open_line, open_col);
      i += 2;
      continue;
    }

    switch (c) {
      case '(': push(TokenKind::kLParen, "(", i); ++i; continue;
      case ')': push(TokenKind::kRParen, ")", i); ++i; continue;
      case '{': push(TokenKind::kLBrace, "{", i); ++i; continue;
      case '}': push(TokenKind::kRBrace, "}", i); ++i; continue;
      case '[': push(TokenKind::kLBracket, "[", i); ++i; continue;
      case ']': push(TokenKind::kRBracket, "]", i); ++i; continue;
      case ',': push(TokenKind::kComma, ",", i); ++i; continue;
      case ';': push(TokenKind::kSemicolon, ";", i); ++i; continue;
      case ':': push(TokenKind::kColon, ":", i); ++i; continue;
      case '+': push(TokenKind::kPlus, "+", i); ++i; continue;
      case '@': push(TokenKind::kAt, "@", i); ++i; continue;
      case '!': push(TokenKind::kBang, "!", i); ++i; continue;
      case '<': push(TokenKind::kLess, "<", i); ++i; continue;
      case '>': push(TokenKind::kGreater, ">", i); ++i; continue;
      default: break;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t start = i;
      if (c == '-') ++i;
      // Hex-float immediates (0f..., 0d...) and plain hex (0x...) keep
      // their alpha payload in the number token.
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.'))
        ++i;
      enforce_limit(i - start, limits.max_identifier_bytes,
                    "number token bytes");
      push(TokenKind::kNumber, text.substr(start, i - start), start);
      continue;
    }

    if (ident_start(c)) {
      std::size_t start = i;
      ++i;
      while (i < n && ident_char(text[i])) ++i;
      enforce_limit(i - start, limits.max_identifier_bytes,
                    "identifier bytes");
      push(TokenKind::kIdentifier, text.substr(start, i - start), start);
      continue;
    }

    lex_fail(std::string("unexpected character '") + c + "'", line,
             col_of(i));
  }
  // The sentinel is exempt from the token budget so the parser always
  // has a kEnd to clamp to.
  tokens.push_back(Token{TokenKind::kEnd, "", line, col_of(i)});
  return tokens;
}

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kEnd: return "<end>";
  }
  return "?";
}

}  // namespace gpuperf::ptx
