#include "ptx/lexer.hpp"

#include <cctype>

#include "common/check.hpp"

namespace gpuperf::ptx {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == '%' || c == '.' || c == '$';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '$' || c == '%';
}

}  // namespace

std::vector<Token> lex(const std::string& text) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto push = [&](TokenKind kind, std::string t) {
    tokens.push_back(Token{kind, std::move(t), line});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      GP_CHECK_MSG(i + 1 < n, "unterminated block comment at line " << line);
      i += 2;
      continue;
    }

    switch (c) {
      case '(': push(TokenKind::kLParen, "("); ++i; continue;
      case ')': push(TokenKind::kRParen, ")"); ++i; continue;
      case '{': push(TokenKind::kLBrace, "{"); ++i; continue;
      case '}': push(TokenKind::kRBrace, "}"); ++i; continue;
      case '[': push(TokenKind::kLBracket, "["); ++i; continue;
      case ']': push(TokenKind::kRBracket, "]"); ++i; continue;
      case ',': push(TokenKind::kComma, ","); ++i; continue;
      case ';': push(TokenKind::kSemicolon, ";"); ++i; continue;
      case ':': push(TokenKind::kColon, ":"); ++i; continue;
      case '+': push(TokenKind::kPlus, "+"); ++i; continue;
      case '@': push(TokenKind::kAt, "@"); ++i; continue;
      case '!': push(TokenKind::kBang, "!"); ++i; continue;
      case '<': push(TokenKind::kLess, "<"); ++i; continue;
      case '>': push(TokenKind::kGreater, ">"); ++i; continue;
      default: break;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t start = i;
      if (c == '-') ++i;
      // Hex-float immediates (0f..., 0d...) and plain hex (0x...) keep
      // their alpha payload in the number token.
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.'))
        ++i;
      push(TokenKind::kNumber, text.substr(start, i - start));
      continue;
    }

    if (ident_start(c)) {
      std::size_t start = i;
      ++i;
      while (i < n && ident_char(text[i])) ++i;
      push(TokenKind::kIdentifier, text.substr(start, i - start));
      continue;
    }

    GP_CHECK_MSG(false, "unexpected character '" << c << "' at line " << line);
  }
  push(TokenKind::kEnd, "");
  return tokens;
}

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kAt: return "'@'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kEnd: return "<end>";
  }
  return "?";
}

}  // namespace gpuperf::ptx
