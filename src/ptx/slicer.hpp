// Program slicing (the paper's G_v* subgraph): the backward closure of
// every branch decision over the data-dependency graph.  Only the
// sliced instructions need to be *evaluated* to resolve control flow;
// everything else is merely *counted* — this is the speed trick that
// lets the dynamic code analysis beat a full simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "ptx/depgraph.hpp"
#include "ptx/module.hpp"

namespace gpuperf::ptx {

struct Slice {
  /// in_slice[i] != 0: instruction i must be evaluated during symbolic
  /// execution (it feeds some branch decision or guard).  A byte array,
  /// not vector<bool>, so the closure worklist reads/writes it without
  /// bit-twiddling.
  std::vector<std::uint8_t> in_slice;

  /// Registers written by slice instructions (the state the executor
  /// tracks), as a dense bitset over interned register ids.
  std::vector<std::uint64_t> tracked_bits;

  bool tracks_id(int reg_id) const {
    if (reg_id < 0) return false;
    const std::size_t word = static_cast<std::size_t>(reg_id) >> 6;
    if (word >= tracked_bits.size()) return false;
    return (tracked_bits[word] >> (reg_id & 63)) & 1u;
  }
  /// Name-keyed membership test kept for tests and diagnostics;
  /// resolves through the kernel's interned symbol table.
  bool tracks(const PtxKernel& kernel, const std::string& reg) const {
    return tracks_id(kernel.register_id(reg));
  }
  /// Number of tracked registers (bitset population count).
  std::size_t tracked_count() const;

  /// Cached at build time — called inside per-launch logging, so it
  /// must not rescan in_slice.
  std::size_t slice_size() const { return size_; }

  std::size_t size_ = 0;  // population count of in_slice
};

/// Slice criteria: every branch guard, every instruction guard, and the
/// transitive data dependencies of both.  Throws AnalysisTimeout when
/// `deadline` expires during the backward closure.
Slice compute_slice(const PtxKernel& kernel, const DependencyGraph& graph,
                    const Deadline& deadline = {});

}  // namespace gpuperf::ptx
