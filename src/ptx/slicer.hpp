// Program slicing (the paper's G_v* subgraph): the backward closure of
// every branch decision over the data-dependency graph.  Only the
// sliced instructions need to be *evaluated* to resolve control flow;
// everything else is merely *counted* — this is the speed trick that
// lets the dynamic code analysis beat a full simulator.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "common/deadline.hpp"
#include "ptx/depgraph.hpp"
#include "ptx/module.hpp"

namespace gpuperf::ptx {

struct Slice {
  /// in_slice[i]: instruction i must be evaluated during symbolic
  /// execution (it feeds some branch decision or guard).
  std::vector<bool> in_slice;
  /// Registers written by slice instructions (the state the executor
  /// tracks).
  std::unordered_set<std::string> tracked_registers;

  std::size_t slice_size() const;
};

/// Slice criteria: every branch guard, every instruction guard, and the
/// transitive data dependencies of both.  Throws AnalysisTimeout when
/// `deadline` expires during the backward closure.
Slice compute_slice(const PtxKernel& kernel, const DependencyGraph& graph,
                    const Deadline& deadline = {});

}  // namespace gpuperf::ptx
