// The PTX instruction-set subset this library generates, parses and
// executes: the scalar/control/memory core that CNN kernels compile to
// (Section III-B of the paper).  Vector and texture instructions are
// out of scope — cuDNN-style CNN kernels do not need them for the
// instruction-counting analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gpuperf::ptx {

enum class Opcode {
  kMov,
  kLd,
  kSt,
  kAdd,
  kSub,
  kMul,
  kMulLo,   // mul.lo on integers
  kMulWide, // mul.wide: 32x32 -> 64
  kMad,     // mad.lo
  kFma,
  kDiv,
  kRem,
  kAnd,
  kOr,
  kXor,
  kNot,
  kShl,
  kShr,
  kSetp,
  kSelp,
  kBra,
  kRet,
  kBar,
  kCvt,
  kCvta,
  kMin,
  kMax,
  kNeg,
  kAbs,
  kRcp,
  kSqrt,
  kEx2,
  kLg2,
};

enum class PtxType {
  kPred,
  kU16,
  kU32,
  kU64,
  kS32,
  kS64,
  kF32,
  kF64,
  kB32,
  kB64,
};

enum class StateSpace {
  kNone,    // register-to-register forms
  kParam,
  kGlobal,
  kShared,
  kLocal,
  kConst,
};

enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// %tid.x, %ctaid.x, %ntid.x, %nctaid.x (only .x is generated; CNN
/// kernels here linearize their index spaces).
enum class SpecialReg { kTidX, kCtaidX, kNtidX, kNctaidX };

/// Broad classes used for instruction-mix statistics and the GPU
/// simulator's issue model.
enum class OpClass {
  kIntAlu,
  kFloatAlu,
  kFma,
  kSfu,      // rcp/sqrt/ex2/lg2 — special function unit
  kLoadGlobal,
  kStoreGlobal,
  kLoadShared,
  kStoreShared,
  kLoadParam,
  kControl,  // bra/ret/bar
  kMove,     // mov/cvt/selp/setp and friends
};
constexpr int kOpClassCount = 11;

const char* opcode_name(Opcode op);
const char* type_suffix(PtxType t);
const char* space_suffix(StateSpace s);
const char* compare_name(CompareOp c);
const char* special_reg_name(SpecialReg r);
const char* op_class_name(OpClass c);

std::optional<Opcode> opcode_from_name(const std::string& name);
std::optional<PtxType> type_from_suffix(const std::string& s);
std::optional<StateSpace> space_from_suffix(const std::string& s);
std::optional<CompareOp> compare_from_name(const std::string& s);
std::optional<SpecialReg> special_reg_from_name(const std::string& s);

bool is_float_type(PtxType t);
/// Byte width of a type (pred counts as 1).
int type_bytes(PtxType t);

/// Classify an (opcode, type, space) triple for mix statistics.
OpClass classify(Opcode op, PtxType type, StateSpace space);

}  // namespace gpuperf::ptx
