#include "ptx/interpreter.hpp"

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace gpuperf::ptx {

namespace {

/// A concrete register value: integer and float views kept in sync
/// loosely (our kernels never reinterpret bits in ways that matter to
/// control flow).
struct Cell {
  std::int64_t i = 0;
  double f = 0.0;
  bool pred = false;
};

}  // namespace

ThreadCounts Interpreter::run_thread(const KernelLaunch& launch,
                                     std::int64_t ctaid, std::int64_t tid,
                                     const Deadline& deadline) const {
  GP_CHECK(ctaid >= 0 && ctaid < launch.grid_dim);
  GP_CHECK(tid >= 0 && tid < launch.block_dim);

  std::vector<Cell> regs(kernel_.register_count());
  std::unordered_map<std::int64_t, double> shared;

  ThreadCounts counts;
  std::size_t pc = 0;
  constexpr std::int64_t kStepLimit = 200'000'000;

  auto cell = [&](const Operand& op) -> Cell {
    if (const auto* r = std::get_if<RegOperand>(&op)) {
      GP_DCHECK(r->id >= 0 && static_cast<std::size_t>(r->id) < regs.size());
      return regs[r->id];
    }
    if (const auto* imm = std::get_if<ImmOperand>(&op)) {
      Cell c;
      c.f = imm->value;
      c.i = imm->ivalue();
      return c;
    }
    if (const auto* sr = std::get_if<SpecialOperand>(&op)) {
      Cell c;
      switch (sr->reg) {
        case SpecialReg::kTidX: c.i = tid; break;
        case SpecialReg::kCtaidX: c.i = ctaid; break;
        case SpecialReg::kNtidX: c.i = launch.block_dim; break;
        case SpecialReg::kNctaidX: c.i = launch.grid_dim; break;
      }
      c.f = static_cast<double>(c.i);
      return c;
    }
    GP_CHECK_MSG(false, "unexpected operand kind in value position");
  };

  auto store = [&](const Operand& op, Cell c) {
    const auto* r = std::get_if<RegOperand>(&op);
    GP_CHECK(r != nullptr && r->id >= 0);
    regs[r->id] = c;
  };

  auto mem_address = [&](const MemOperand& mem) -> std::int64_t {
    if (mem.base_reg_id >= 0) return regs[mem.base_reg_id].i + mem.offset;
    return mem.offset;  // parameter bases handled separately
  };

  while (pc < kernel_.instructions.size()) {
    GP_CHECK_MSG(counts.total < kStepLimit,
                 "interpreter step limit in " << kernel_.name);
    deadline.charge(kernel_.name.c_str());
    const Instruction& inst = kernel_.instructions[pc];
    ++counts.total;
    ++counts.by_class[static_cast<std::size_t>(
        classify(inst.opcode, inst.type, inst.space))];

    bool guard_pass = true;
    if (inst.guard_id >= 0) {
      const bool p = regs[inst.guard_id].pred;
      guard_pass = inst.guard_negated ? !p : p;
    }

    const bool is_f = is_float_type(inst.type);
    auto src = [&](std::size_t i) { return cell(inst.srcs[i]); };
    auto set_int = [&](std::int64_t v) {
      Cell c;
      c.i = v;
      c.f = static_cast<double>(v);
      store(inst.dsts.front(), c);
    };
    auto set_f = [&](double v) {
      Cell c;
      c.f = v;
      c.i = static_cast<std::int64_t>(v);
      store(inst.dsts.front(), c);
    };

    if (!guard_pass) {
      if (inst.is_branch()) {
        ++pc;
        continue;
      }
      // Our codegen only guards branches, but predicated ALU ops would
      // simply be skipped here.
      ++pc;
      continue;
    }

    switch (inst.opcode) {
      case Opcode::kMov:
      case Opcode::kCvta:
        store(inst.dsts.front(), src(0));
        break;
      case Opcode::kCvt: {
        Cell a = src(0);
        if (is_f)
          set_f(a.f);
        else
          set_int(a.i);
        break;
      }
      case Opcode::kLd: {
        const auto* mem = std::get_if<MemOperand>(&inst.srcs.front());
        GP_CHECK(mem != nullptr);
        if (inst.space == StateSpace::kParam) {
          const auto it = launch.args.find(mem->base);
          GP_CHECK_MSG(it != launch.args.end(),
                       "missing launch argument '" << mem->base << "'");
          set_int(it->second);
        } else if (inst.space == StateSpace::kShared) {
          const auto it = shared.find(mem_address(*mem));
          set_f(it == shared.end() ? 0.0 : it->second);
        } else {
          set_f(0.0);  // global memory contents are immaterial to counts
        }
        break;
      }
      case Opcode::kSt: {
        if (inst.space == StateSpace::kShared) {
          const auto* mem = std::get_if<MemOperand>(&inst.srcs.front());
          GP_CHECK(mem != nullptr);
          shared[mem_address(*mem)] = cell(inst.srcs[1]).f;
        }
        break;
      }
      case Opcode::kAdd:
        is_f ? set_f(src(0).f + src(1).f) : set_int(src(0).i + src(1).i);
        break;
      case Opcode::kSub:
        is_f ? set_f(src(0).f - src(1).f) : set_int(src(0).i - src(1).i);
        break;
      case Opcode::kMul:
      case Opcode::kMulLo:
      case Opcode::kMulWide:
        is_f ? set_f(src(0).f * src(1).f) : set_int(src(0).i * src(1).i);
        break;
      case Opcode::kMad:
        set_int(src(0).i * src(1).i + src(2).i);
        break;
      case Opcode::kFma:
        set_f(src(0).f * src(1).f + src(2).f);
        break;
      case Opcode::kDiv: {
        if (is_f) {
          set_f(src(1).f == 0.0 ? 0.0 : src(0).f / src(1).f);
        } else {
          GP_CHECK_MSG(src(1).i != 0, "integer division by zero");
          set_int(src(0).i / src(1).i);
        }
        break;
      }
      case Opcode::kRem:
        GP_CHECK_MSG(src(1).i != 0, "integer remainder by zero");
        set_int(src(0).i % src(1).i);
        break;
      case Opcode::kAnd: set_int(src(0).i & src(1).i); break;
      case Opcode::kOr: set_int(src(0).i | src(1).i); break;
      case Opcode::kXor: set_int(src(0).i ^ src(1).i); break;
      case Opcode::kNot: set_int(~src(0).i); break;
      case Opcode::kShl: set_int(src(0).i << (src(1).i & 63)); break;
      case Opcode::kShr: set_int(src(0).i >> (src(1).i & 63)); break;
      case Opcode::kMin:
        is_f ? set_f(std::min(src(0).f, src(1).f))
             : set_int(std::min(src(0).i, src(1).i));
        break;
      case Opcode::kMax:
        is_f ? set_f(std::max(src(0).f, src(1).f))
             : set_int(std::max(src(0).i, src(1).i));
        break;
      case Opcode::kNeg:
        is_f ? set_f(-src(0).f) : set_int(-src(0).i);
        break;
      case Opcode::kAbs:
        is_f ? set_f(std::fabs(src(0).f)) : set_int(std::abs(src(0).i));
        break;
      case Opcode::kRcp:
        set_f(src(0).f == 0.0 ? 0.0 : 1.0 / src(0).f);
        break;
      case Opcode::kSqrt:
        set_f(std::sqrt(std::max(src(0).f, 0.0)));
        break;
      case Opcode::kEx2:
        set_f(std::exp2(std::min(src(0).f, 80.0)));
        break;
      case Opcode::kLg2:
        set_f(src(0).f <= 0.0 ? -80.0 : std::log2(src(0).f));
        break;
      case Opcode::kSetp: {
        const Cell a = src(0);
        const Cell b = src(1);
        bool result = false;
        const bool fcmp = is_f;
        auto cmp = [&](auto x, auto y) {
          switch (*inst.cmp) {
            case CompareOp::kLt: return x < y;
            case CompareOp::kLe: return x <= y;
            case CompareOp::kGt: return x > y;
            case CompareOp::kGe: return x >= y;
            case CompareOp::kEq: return x == y;
            case CompareOp::kNe: return x != y;
          }
          return false;
        };
        result = fcmp ? cmp(a.f, b.f) : cmp(a.i, b.i);
        Cell c;
        c.pred = result;
        c.i = result ? 1 : 0;
        store(inst.dsts.front(), c);
        break;
      }
      case Opcode::kSelp: {
        const auto* pr = std::get_if<RegOperand>(&inst.srcs[2]);
        GP_CHECK(pr != nullptr && pr->id >= 0);
        const bool p = regs[pr->id].pred;
        store(inst.dsts.front(), p ? src(0) : src(1));
        break;
      }
      case Opcode::kBar:
        break;  // single-thread interpretation: no-op
      case Opcode::kBra: {
        const auto* label = std::get_if<LabelOperand>(&inst.srcs.front());
        GP_CHECK(label != nullptr);
        pc = kernel_.label_target(label->name);
        continue;
      }
      case Opcode::kRet:
        return counts;
    }
    ++pc;
  }
  return counts;  // fell off the end (no ret) — treated as exit
}

ThreadCounts Interpreter::run_all(const KernelLaunch& launch,
                                  const Deadline& deadline) const {
  ThreadCounts total;
  for (std::int64_t ct = 0; ct < launch.grid_dim; ++ct) {
    for (std::int64_t t = 0; t < launch.block_dim; ++t) {
      const ThreadCounts c = run_thread(launch, ct, t, deadline);
      total.total += c.total;
      for (std::size_t i = 0; i < c.by_class.size(); ++i)
        total.by_class[i] += c.by_class[i];
    }
  }
  return total;
}

}  // namespace gpuperf::ptx
