#include "ptx/slicer.hpp"

#include <deque>

#include "common/check.hpp"

namespace gpuperf::ptx {

std::size_t Slice::slice_size() const {
  std::size_t n = 0;
  for (bool b : in_slice)
    if (b) ++n;
  return n;
}

Slice compute_slice(const PtxKernel& kernel, const DependencyGraph& graph,
                    const Deadline& deadline) {
  const auto& ins = kernel.instructions;
  GP_CHECK(graph.node_count() == ins.size());

  Slice slice;
  slice.in_slice.assign(ins.size(), false);

  // Seed with the decision points: guard registers of branches and of
  // predicated instructions.
  std::deque<std::size_t> worklist;
  auto mark = [&](std::size_t i) {
    if (!slice.in_slice[i]) {
      slice.in_slice[i] = true;
      worklist.push_back(i);
    }
  };
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (ins[i].guard_id < 0) continue;
    for (std::size_t def : graph.defs_of_id(ins[i].guard_id)) mark(def);
  }

  // Backward closure over data dependencies.
  while (!worklist.empty()) {
    deadline.charge("slicer");
    const std::size_t i = worklist.front();
    worklist.pop_front();
    for (std::size_t dep : graph.deps(i)) mark(dep);
  }

  for (std::size_t i = 0; i < ins.size(); ++i)
    if (slice.in_slice[i])
      for (const std::string& reg : ins[i].defs())
        slice.tracked_registers.insert(reg);
  return slice;
}

}  // namespace gpuperf::ptx
