#include "ptx/slicer.hpp"

#include <bit>

#include "common/arena.hpp"
#include "common/check.hpp"

namespace gpuperf::ptx {

namespace {

/// Per-thread scratch for the closure worklist; reset after each slice.
Arena& scratch_arena() {
  thread_local Arena arena(64u << 10);
  return arena;
}

}  // namespace

std::size_t Slice::tracked_count() const {
  std::size_t n = 0;
  for (std::uint64_t word : tracked_bits) n += std::popcount(word);
  return n;
}

Slice compute_slice(const PtxKernel& kernel, const DependencyGraph& graph,
                    const Deadline& deadline) {
  const auto& ins = kernel.instructions;
  GP_CHECK(graph.node_count() == ins.size());

  Slice slice;
  slice.in_slice.assign(ins.size(), 0);

  // Index worklist over the in_slice byte array (which doubles as the
  // visited set).  Marking before pushing bounds the worklist at one
  // entry per instruction, so a fixed arena-backed array suffices; LIFO
  // order changes nothing — the closure is order-independent.
  Arena& scratch = scratch_arena();
  const Arena::ResetScope scope(scratch);
  std::span<std::uint32_t> worklist =
      scratch.alloc_array<std::uint32_t>(ins.size());
  std::size_t top = 0;
  auto mark = [&](std::uint32_t i) {
    if (!slice.in_slice[i]) {
      slice.in_slice[i] = 1;
      worklist[top++] = i;
    }
  };

  // Seed with the decision points: guard registers of branches and of
  // predicated instructions.
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (ins[i].guard_id < 0) continue;
    for (std::uint32_t def : graph.defs_of_id(ins[i].guard_id)) mark(def);
  }

  // Backward closure over data dependencies.
  while (top > 0) {
    deadline.charge("slicer");
    const std::uint32_t i = worklist[--top];
    for (std::uint32_t dep : graph.deps(i)) mark(dep);
  }

  slice.tracked_bits.assign((kernel.register_count() + 63) / 64, 0);
  for (std::size_t i = 0; i < ins.size(); ++i) {
    if (!slice.in_slice[i]) continue;
    ++slice.size_;
    ins[i].for_each_def_id([&](int id) {
      slice.tracked_bits[static_cast<std::size_t>(id) >> 6] |=
          std::uint64_t{1} << (id & 63);
    });
  }
  return slice;
}

}  // namespace gpuperf::ptx
