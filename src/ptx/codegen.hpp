// CNN -> PTX lowering.  Mirrors what nvcc + a CNN runtime produce: a
// fixed library of kernels (tiled GEMM, im2col, depthwise conv,
// pooling, reductions, elementwise epilogues) plus one launch per layer
// operation binding concrete dimensions.  The generated module is PTX
// *text*; the analysis pipeline parses it back like it would parse real
// nvcc output.
//
// Codegen contract relied on by the symbolic executor: branches are
// either (a) linear-thread-id guards, or (b) loop back-edges whose
// conditions depend only on parameters and induction registers — never
// on data loaded from global memory.  Real CNN kernels satisfy the same
// property.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnn/model.hpp"
#include "ptx/module.hpp"

namespace gpuperf::ptx {

/// Analytic DRAM traffic for one launch (inputs + weights touched once,
/// outputs written once — the roofline assumption for cached kernels).
struct LaunchStats {
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t flops = 0;
};

struct CompiledModel {
  std::string model_name;
  PtxModule module;  // the kernel library actually referenced
  std::vector<KernelLaunch> launches;
  std::vector<LaunchStats> stats;    // parallel to launches
  /// Name of the model layer each launch implements (parallel to
  /// launches) — the basis for per-layer latency attribution.
  std::vector<std::string> sources;
};

class CodeGenerator {
 public:
  /// Threads per block for every generated kernel.
  static constexpr int kBlockDim = 256;
  /// GEMM tile edge (K is padded to a multiple of this by the "host").
  static constexpr int kGemmTile = 16;

  /// The full fixed kernel library, independent of any model.
  static PtxModule kernel_library();

  /// kernel_library() round-tripped through its textual PTX form and
  /// parsed — the form every analysis consumes.  Parsed exactly once
  /// per process and shared; callers must not mutate it (take a copy
  /// for that).
  static const PtxModule& parsed_kernel_library();

  /// Lower a model to launches over the kernel library.  `batch` > 1
  /// scales every activation-sized index space (weights stay shared),
  /// modeling batched inference.
  CompiledModel compile(const cnn::Model& model,
                        std::int64_t batch = 1) const;
};

}  // namespace gpuperf::ptx
