// Data-dependency graph G = (V, E) over a kernel's instructions
// (Section IV-A of the paper): node n_i depends on n_j when n_i reads a
// register n_j writes.  The graph is flow-insensitive (every definition
// of a register is a potential dependency), which over-approximates —
// safe for slicing, where missing a dependency would be unsound but an
// extra one only tracks a little more state.
//
// Storage is two flat CSR graphs (common/csr_graph.hpp) instead of
// vector-of-vectors adjacency: deps_ maps instruction → sorted unique
// dependency instructions, defs_ maps interned register id → definition
// sites.  Both live in MappedBuffers, so graphs past the
// InputLimits::max_depgraph_resident_bytes budget spill to the
// configured spill directory (docs/PERF.md "Graph memory layout")
// instead of OOMing, and multi-million-instruction modules stay inside
// a bounded RSS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/csr_graph.hpp"
#include "common/deadline.hpp"
#include "ptx/module.hpp"

namespace gpuperf::ptx {

class DependencyGraph {
 public:
  /// Requires kernel.registers_interned(); def/use sites are indexed by
  /// interned register id so graph construction never hashes strings.
  /// `deadline` is charged once per instruction per pass, so a giant
  /// module aborts cooperatively mid-build instead of running away.
  /// Spill policy comes from dca_spill_config(); throws LimitExceeded
  /// when the CSR bytes exceed the resident budget with no spill
  /// directory, or the max_depgraph_bytes hard cap regardless.
  static DependencyGraph build(const PtxKernel& kernel,
                               const Deadline& deadline = {});

  std::size_t node_count() const { return deps_.node_count(); }

  /// Instructions whose outputs instruction i may read (sorted, unique).
  std::span<const std::uint32_t> deps(std::size_t i) const {
    return deps_.row(i);
  }

  /// All definition sites of a register, by interned id (hot path).
  std::span<const std::uint32_t> defs_of_id(int reg_id) const {
    if (reg_id < 0 || static_cast<std::size_t>(reg_id) >= defs_.node_count())
      return {};
    return defs_.row(static_cast<std::size_t>(reg_id));
  }

  /// Name-keyed lookup kept for tests and diagnostics; resolves through
  /// the kernel's interned symbol table (O(1) hash lookup, no scan).
  std::span<const std::uint32_t> defs_of(const PtxKernel& kernel,
                                         const std::string& reg) const {
    return defs_of_id(kernel.register_id(reg));
  }

  std::size_t edge_count() const { return deps_.edge_count(); }

  /// Bytes held by this graph's CSR arrays, and whether they live in a
  /// spill file rather than anonymous memory.
  std::size_t csr_bytes() const { return deps_.bytes() + defs_.bytes(); }
  bool spilled() const { return deps_.spilled() || defs_.spilled(); }

  /// Process-wide cumulative CSR bytes ever built (monotonic; feeds the
  /// serve `depgraph_csr_bytes` counter).
  static std::uint64_t total_csr_bytes();

 private:
  CsrGraph deps_;  // instruction -> dependency instructions
  CsrGraph defs_;  // register id -> definition sites
};

}  // namespace gpuperf::ptx
