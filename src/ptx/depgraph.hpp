// Data-dependency graph G = (V, E) over a kernel's instructions
// (Section IV-A of the paper): node n_i depends on n_j when n_i reads a
// register n_j writes.  The graph is flow-insensitive (every definition
// of a register is a potential dependency), which over-approximates —
// safe for slicing, where missing a dependency would be unsound but an
// extra one only tracks a little more state.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "ptx/module.hpp"

namespace gpuperf::ptx {

class DependencyGraph {
 public:
  /// Requires kernel.registers_interned(); def/use sites are indexed by
  /// interned register id so graph construction never hashes strings.
  static DependencyGraph build(const PtxKernel& kernel);

  std::size_t node_count() const { return deps_.size(); }

  /// Instructions whose outputs instruction i may read.
  const std::vector<std::size_t>& deps(std::size_t i) const;

  /// All definition sites of a register, by interned id (hot path).
  const std::vector<std::size_t>& defs_of_id(int reg_id) const;

  /// Name-keyed lookup kept for tests and diagnostics; linear scan of
  /// the kernel's register table.
  const std::vector<std::size_t>& defs_of(const std::string& reg) const;

  std::size_t edge_count() const;

 private:
  std::vector<std::vector<std::size_t>> deps_;
  std::vector<std::vector<std::size_t>> defs_by_id_;
  std::vector<std::string> reg_names_;  // id -> name, for defs_of(string)
  std::vector<std::size_t> empty_;
};

}  // namespace gpuperf::ptx
