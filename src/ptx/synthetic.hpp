// Synthetic giant-kernel generator for out-of-core DCA testing and
// benchmarking.  Real CNN kernels top out at a few hundred
// instructions; the spill path (docs/PERF.md "Graph memory layout")
// only engages on multi-million-instruction modules, which would be
// absurd to ship as PTX text fixtures.  synthetic_module() fabricates
// one directly as a PtxModule: a parameter-bound counting loop whose
// body is a long stream of floating-point instructions reading a small
// pool of once-defined seed registers.
//
// The shape is chosen so every analysis stays *linear* in the body
// length under the flow-insensitive dependency graph (each body
// instruction depends on exactly its two seed definitions; the written
// data registers are never read back), the slice stays tiny (only the
// loop head feeds the branch), and the dynamic instruction count has a
// closed form per thread:
//
//   2 + seed_registers + n * (body_instructions + 3) + 1
//
// (prelude + n loop iterations of body+add+setp+bra + ret), uniform
// across threads, so tests can assert exact totals.
#pragma once

#include <cstddef>
#include <string>

#include "ptx/module.hpp"

namespace gpuperf::ptx {

struct SyntheticSpec {
  /// Floating-point instructions inside the loop body.
  std::size_t body_instructions = 1'000'000;
  /// Write-only registers the body rotates through.
  std::size_t data_registers = 64;
  /// Once-defined registers the body reads (each body instruction reads
  /// two of them — bounding dependency edges at 2 × body_instructions).
  std::size_t seed_registers = 32;
  std::string kernel_name = "gp_synth";
};

/// One-kernel module per `spec`, registers already interned.  The
/// kernel takes a single .u32 parameter `p_n` (the loop trip count,
/// executed do-while style: n < 1 behaves as 1).
PtxModule synthetic_module(const SyntheticSpec& spec = {});

/// The closed-form thread-level dynamic instruction count of one launch
/// of the synthetic kernel with trip count `n`.
std::int64_t synthetic_dynamic_instructions(const SyntheticSpec& spec,
                                            std::int64_t n,
                                            std::int64_t total_threads);

}  // namespace gpuperf::ptx
