// Control-flow graph over a kernel's instruction stream: basic blocks
// split at labels and branches, with fallthrough/target edges.  The
// dynamic code analysis counts whole blocks at a time, so block
// boundaries are the unit of the instruction-counting algebra.
#pragma once

#include <cstddef>
#include <vector>

#include "ptx/module.hpp"

namespace gpuperf::ptx {

struct BasicBlock {
  std::size_t first = 0;  // first instruction index
  std::size_t last = 0;   // last instruction index (inclusive)
  std::vector<std::size_t> succs;
  std::vector<std::size_t> preds;

  std::size_t size() const { return last - first + 1; }
};

class Cfg {
 public:
  static Cfg build(const PtxKernel& kernel);

  const std::vector<BasicBlock>& blocks() const { return blocks_; }
  const BasicBlock& block(std::size_t i) const;
  std::size_t block_count() const { return blocks_.size(); }

  /// Block containing an instruction.
  std::size_t block_of(std::size_t instruction_index) const;

  /// Entry block id (always 0 — block order follows instruction order).
  std::size_t entry() const { return 0; }

  /// Blocks that end in a conditional branch (guard + bra).
  std::vector<std::size_t> conditional_blocks() const;

  /// True if any path contains a cycle (the kernel has loops).
  bool has_loops() const;

 private:
  std::vector<BasicBlock> blocks_;
  std::vector<std::size_t> block_of_;
};

}  // namespace gpuperf::ptx
