#include "ptx/isa.hpp"

#include "common/check.hpp"

namespace gpuperf::ptx {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kMov: return "mov";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kMulLo: return "mul.lo";
    case Opcode::kMulWide: return "mul.wide";
    case Opcode::kMad: return "mad.lo";
    case Opcode::kFma: return "fma.rn";
    case Opcode::kDiv: return "div";
    case Opcode::kRem: return "rem";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNot: return "not";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kSetp: return "setp";
    case Opcode::kSelp: return "selp";
    case Opcode::kBra: return "bra";
    case Opcode::kRet: return "ret";
    case Opcode::kBar: return "bar.sync";
    case Opcode::kCvt: return "cvt";
    case Opcode::kCvta: return "cvta.to.global";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kNeg: return "neg";
    case Opcode::kAbs: return "abs";
    case Opcode::kRcp: return "rcp.approx";
    case Opcode::kSqrt: return "sqrt.approx";
    case Opcode::kEx2: return "ex2.approx";
    case Opcode::kLg2: return "lg2.approx";
  }
  return "?";
}

const char* type_suffix(PtxType t) {
  switch (t) {
    case PtxType::kPred: return "pred";
    case PtxType::kU16: return "u16";
    case PtxType::kU32: return "u32";
    case PtxType::kU64: return "u64";
    case PtxType::kS32: return "s32";
    case PtxType::kS64: return "s64";
    case PtxType::kF32: return "f32";
    case PtxType::kF64: return "f64";
    case PtxType::kB32: return "b32";
    case PtxType::kB64: return "b64";
  }
  return "?";
}

const char* space_suffix(StateSpace s) {
  switch (s) {
    case StateSpace::kNone: return "";
    case StateSpace::kParam: return "param";
    case StateSpace::kGlobal: return "global";
    case StateSpace::kShared: return "shared";
    case StateSpace::kLocal: return "local";
    case StateSpace::kConst: return "const";
  }
  return "?";
}

const char* compare_name(CompareOp c) {
  switch (c) {
    case CompareOp::kLt: return "lt";
    case CompareOp::kLe: return "le";
    case CompareOp::kGt: return "gt";
    case CompareOp::kGe: return "ge";
    case CompareOp::kEq: return "eq";
    case CompareOp::kNe: return "ne";
  }
  return "?";
}

const char* special_reg_name(SpecialReg r) {
  switch (r) {
    case SpecialReg::kTidX: return "%tid.x";
    case SpecialReg::kCtaidX: return "%ctaid.x";
    case SpecialReg::kNtidX: return "%ntid.x";
    case SpecialReg::kNctaidX: return "%nctaid.x";
  }
  return "?";
}

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kIntAlu: return "int_alu";
    case OpClass::kFloatAlu: return "float_alu";
    case OpClass::kFma: return "fma";
    case OpClass::kSfu: return "sfu";
    case OpClass::kLoadGlobal: return "ld_global";
    case OpClass::kStoreGlobal: return "st_global";
    case OpClass::kLoadShared: return "ld_shared";
    case OpClass::kStoreShared: return "st_shared";
    case OpClass::kLoadParam: return "ld_param";
    case OpClass::kControl: return "control";
    case OpClass::kMove: return "move";
  }
  return "?";
}

std::optional<Opcode> opcode_from_name(const std::string& name) {
  // Reverse of opcode_name over the full enum; cheap linear scan.
  static const Opcode all[] = {
      Opcode::kMov,  Opcode::kLd,     Opcode::kSt,      Opcode::kAdd,
      Opcode::kSub,  Opcode::kMul,    Opcode::kMulLo,   Opcode::kMulWide,
      Opcode::kMad,  Opcode::kFma,    Opcode::kDiv,     Opcode::kRem,
      Opcode::kAnd,  Opcode::kOr,     Opcode::kXor,     Opcode::kNot,
      Opcode::kShl,  Opcode::kShr,    Opcode::kSetp,    Opcode::kSelp,
      Opcode::kBra,  Opcode::kRet,    Opcode::kBar,     Opcode::kCvt,
      Opcode::kCvta, Opcode::kMin,    Opcode::kMax,     Opcode::kNeg,
      Opcode::kAbs,  Opcode::kRcp,    Opcode::kSqrt,    Opcode::kEx2,
      Opcode::kLg2};
  for (Opcode op : all)
    if (name == opcode_name(op)) return op;
  return std::nullopt;
}

std::optional<PtxType> type_from_suffix(const std::string& s) {
  static const PtxType all[] = {PtxType::kPred, PtxType::kU16, PtxType::kU32,
                                PtxType::kU64,  PtxType::kS32, PtxType::kS64,
                                PtxType::kF32,  PtxType::kF64, PtxType::kB32,
                                PtxType::kB64};
  for (PtxType t : all)
    if (s == type_suffix(t)) return t;
  return std::nullopt;
}

std::optional<StateSpace> space_from_suffix(const std::string& s) {
  static const StateSpace all[] = {StateSpace::kParam, StateSpace::kGlobal,
                                   StateSpace::kShared, StateSpace::kLocal,
                                   StateSpace::kConst};
  for (StateSpace sp : all)
    if (s == space_suffix(sp)) return sp;
  return std::nullopt;
}

std::optional<CompareOp> compare_from_name(const std::string& s) {
  static const CompareOp all[] = {CompareOp::kLt, CompareOp::kLe,
                                  CompareOp::kGt, CompareOp::kGe,
                                  CompareOp::kEq, CompareOp::kNe};
  for (CompareOp c : all)
    if (s == compare_name(c)) return c;
  return std::nullopt;
}

std::optional<SpecialReg> special_reg_from_name(const std::string& s) {
  static const SpecialReg all[] = {SpecialReg::kTidX, SpecialReg::kCtaidX,
                                   SpecialReg::kNtidX, SpecialReg::kNctaidX};
  for (SpecialReg r : all)
    if (s == special_reg_name(r)) return r;
  return std::nullopt;
}

bool is_float_type(PtxType t) {
  return t == PtxType::kF32 || t == PtxType::kF64;
}

int type_bytes(PtxType t) {
  switch (t) {
    case PtxType::kPred: return 1;
    case PtxType::kU16: return 2;
    case PtxType::kU32:
    case PtxType::kS32:
    case PtxType::kF32:
    case PtxType::kB32: return 4;
    case PtxType::kU64:
    case PtxType::kS64:
    case PtxType::kF64:
    case PtxType::kB64: return 8;
  }
  return 4;
}

OpClass classify(Opcode op, PtxType type, StateSpace space) {
  switch (op) {
    case Opcode::kLd:
      if (space == StateSpace::kShared) return OpClass::kLoadShared;
      if (space == StateSpace::kParam || space == StateSpace::kConst)
        return OpClass::kLoadParam;
      return OpClass::kLoadGlobal;
    case Opcode::kSt:
      return space == StateSpace::kShared ? OpClass::kStoreShared
                                          : OpClass::kStoreGlobal;
    case Opcode::kBra:
    case Opcode::kRet:
    case Opcode::kBar:
      return OpClass::kControl;
    case Opcode::kFma:
    case Opcode::kMad:
      return is_float_type(type) ? OpClass::kFma : OpClass::kIntAlu;
    case Opcode::kRcp:
    case Opcode::kSqrt:
    case Opcode::kEx2:
    case Opcode::kLg2:
      return OpClass::kSfu;
    case Opcode::kMov:
    case Opcode::kCvt:
    case Opcode::kCvta:
    case Opcode::kSelp:
    case Opcode::kSetp:
      return OpClass::kMove;
    default:
      return is_float_type(type) ? OpClass::kFloatAlu : OpClass::kIntAlu;
  }
}

}  // namespace gpuperf::ptx
