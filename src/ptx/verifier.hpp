// Structural verification of PTX kernels — the checks a PTX assembler
// would apply.  Run over generated modules in tests and over parsed
// external input before analysis, so malformed code fails loudly at
// the boundary instead of corrupting instruction counts.
#pragma once

#include <string>
#include <vector>

#include "ptx/module.hpp"

namespace gpuperf::ptx {

struct VerifyIssue {
  std::size_t instruction_index = 0;  // or npos for kernel-level issues
  std::string message;

  static constexpr std::size_t kKernelLevel = static_cast<std::size_t>(-1);
};

/// All problems found in one kernel; empty = verified clean.
/// Checks: branch targets resolve; register names match a declared
/// prefix and index range; guards are predicate registers; operand
/// shapes fit the opcode (setp has a compare op, loads/stores have a
/// memory operand, branches a label); param references name declared
/// parameters; control flow cannot fall off the end; shared-memory
/// kernels declare a buffer.
std::vector<VerifyIssue> verify_kernel(const PtxKernel& kernel);

/// Verify every kernel of a module; issue messages are prefixed with
/// the kernel name.
std::vector<VerifyIssue> verify_module(const PtxModule& module);

/// GP_CHECK-fails with the first issue if any; convenience for
/// pipelines.
void verify_or_throw(const PtxModule& module);

}  // namespace gpuperf::ptx
