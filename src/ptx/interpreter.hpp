// Reference PTX interpreter: concretely executes every instruction of
// one thread (the "traditional simulator" the paper's dynamic code
// analysis is benchmarked against).  Used to cross-validate the
// symbolic executor — summing per-thread counts over a whole launch
// must equal SymbolicExecutor::run — and as the slow baseline in the
// slicing ablation bench.
#pragma once

#include <array>
#include <cstdint>

#include "common/deadline.hpp"
#include "ptx/module.hpp"

namespace gpuperf::ptx {

struct ThreadCounts {
  std::int64_t total = 0;
  std::array<std::int64_t, kOpClassCount> by_class{};
};

class Interpreter {
 public:
  /// Copies the kernel and interns its registers so each thread's
  /// register file is a dense vector indexed by id (no string hashing
  /// on the instruction dispatch path).
  explicit Interpreter(const PtxKernel& kernel) : kernel_(kernel) {
    kernel_.intern_registers();
  }

  /// Execute one thread (ctaid, tid) of a launch.  Global loads return
  /// zero; shared memory is a private scratch map (block-level
  /// interleavings do not affect instruction counts in the supported
  /// kernel fragment).  Throws AnalysisTimeout when `deadline` expires
  /// (one charge() per executed instruction).
  ThreadCounts run_thread(const KernelLaunch& launch, std::int64_t ctaid,
                          std::int64_t tid,
                          const Deadline& deadline = {}) const;

  /// Sum run_thread over the entire launch (brute force; use only on
  /// small launches / in tests).  The deadline spans all threads.
  ThreadCounts run_all(const KernelLaunch& launch,
                       const Deadline& deadline = {}) const;

 private:
  PtxKernel kernel_;
};

}  // namespace gpuperf::ptx
