#include "sandbox/worker.hpp"

#include <sys/prctl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <exception>
#include <new>
#include <string>
#include <vector>

#include "cnn/zoo.hpp"
#include "common/deadline.hpp"
#include "common/fault.hpp"
#include "common/limits.hpp"
#include "common/subprocess.hpp"
#include "core/features.hpp"
#include "ptx/parser.hpp"
#include "sandbox/wire.hpp"

namespace gpuperf::sandbox {

namespace {

void apply_rlimit(int resource, rlim_t value) {
  struct rlimit rl;
  rl.rlim_cur = value;
  rl.rlim_max = value;
  ::setrlimit(resource, &rl);  // best effort; failure = no cap
}

void apply_limits(const WorkerLimits& limits) {
  apply_rlimit(RLIMIT_CORE, 0);
  if (limits.address_space_mb > 0)
    apply_rlimit(RLIMIT_AS,
                 static_cast<rlim_t>(limits.address_space_mb) << 20);
  if (limits.cpu_seconds > 0)
    apply_rlimit(RLIMIT_CPU, static_cast<rlim_t>(limits.cpu_seconds));
  if (limits.open_files > 0)
    apply_rlimit(RLIMIT_NOFILE,
                 static_cast<rlim_t>(limits.open_files));
}

/// Retained across requests so an injected OOM keeps the worker's RSS
/// elevated — the parent's RSS-ceiling recycle path needs to observe
/// the bloat on the *next* response, not a transient spike.
std::vector<std::string>& ballast() {
  static std::vector<std::string> blocks;
  return blocks;
}

/// Allocate-and-touch `mb` MiB (0 = until refusal).  Under RLIMIT_AS
/// the unbounded form ends in std::bad_alloc, which the caller turns
/// into a typed `failed` response — allocation refusal is a graceful
/// failure, not a crash.
void inflate_rss(std::size_t mb) {
  constexpr std::size_t kBlock = 1u << 20;
  const std::size_t blocks = mb == 0 ? SIZE_MAX : mb;
  for (std::size_t i = 0; i < blocks; ++i) {
    ballast().emplace_back(kBlock, '\0');
    std::string& block = ballast().back();
    for (std::size_t off = 0; off < block.size(); off += 4096)
      block[off] = static_cast<char>(off);  // touch every page
  }
}

/// The worker-side chaos sites.  Site *names* carry the semantics
/// (abort / hang / OOM); the generic action grammar only parameterizes
/// them — dca.oom=delay:64 means "retain 64 MiB", dca.oom=throw means
/// "allocate until refused".  Fired once per armed count, before the
/// analysis itself, exactly like an in-process GPUPERF_FAULT_POINT.
void chaos_points() {
  fault::Spec spec;
  if (fault::consume_nonthrowing("dca.crash", spec)) std::abort();
  if (fault::consume_nonthrowing("dca.hang", spec)) {
    for (;;) ::pause();  // until the hard-deadline reaper SIGKILLs us
  }
  if (fault::consume_nonthrowing("dca.oom", spec)) {
    inflate_rss(spec.action == fault::Action::kDelay
                    ? static_cast<std::size_t>(spec.delay_ms)
                    : 0);
  }
}

WorkerResponse serve_one(const WorkerRequest& request,
                         core::FeatureExtractor& extractor) {
  WorkerResponse response;
  // Re-arm the parent's snapshot of dca.* sites for this request; a
  // malformed spec is a parent bug, reported as invalid.
  fault::disarm_all();
  if (!request.fault_spec.empty()) {
    try {
      fault::arm_from_spec(request.fault_spec);
    } catch (const std::exception& e) {
      response.status = Status::kInvalid;
      response.error = std::string("bad fault spec: ") + e.what();
      return response;
    }
  }

  Deadline deadline = request.deadline_ms > 0
                          ? Deadline::after_ms(request.deadline_ms)
                          : Deadline();
  if (request.step_budget > 0)
    deadline.with_step_budget(request.step_budget);

  try {
    chaos_points();
    switch (request.verb) {
      case Verb::kPing:
      case Verb::kExit:
        response.status = Status::kOk;
        break;
      case Verb::kCompute: {
        if (!cnn::zoo::has_model(request.model)) {
          response.status = Status::kFailed;
          response.error = "unknown zoo model '" + request.model + "'";
          break;
        }
        GPUPERF_FAULT_POINT_D("dca.compute", &deadline);
        response.features =
            extractor.compute(cnn::zoo::build(request.model), deadline);
        response.status = Status::kOk;
        break;
      }
      case Verb::kPtx: {
        GPUPERF_FAULT_POINT_D("dca.compute", &deadline);
        ptx::parse_ptx(request.body);
        response.status = Status::kOk;
        break;
      }
    }
  } catch (const AnalysisTimeout& e) {
    response.status = Status::kTimeout;
    response.error = e.what();
  } catch (const std::bad_alloc&) {
    // RLIMIT_AS refused an allocation mid-analysis.  The heap is intact
    // (the failed allocation never happened), so this worker can keep
    // serving — though its next response's rss_kb will likely trip the
    // parent's recycle ceiling.
    response.status = Status::kFailed;
    response.error = "allocation refused under address-space limit";
  } catch (const std::exception& e) {
    response.status = Status::kFailed;
    response.error = e.what();
  }
  return response;
}

}  // namespace

void worker_main(int request_fd, int response_fd,
                 const WorkerLimits& limits) {
  // Die with the parent: if the serving process is gone, a worker has
  // no purpose and must not linger as an orphan.  The getppid() check
  // closes the race where the parent died between fork() and prctl().
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) ::_exit(0);
  ignore_sigpipe();
  apply_limits(limits);

  core::FeatureExtractor extractor;
  std::uint64_t served = 0;
  for (;;) {
    const auto payload = read_frame(request_fd);
    if (!payload) ::_exit(0);  // parent closed the pipe: recycle/shutdown

    WorkerResponse response;
    bool exiting = false;
    const auto request = parse_request(*payload);
    if (!request) {
      response.status = Status::kInvalid;
      response.error = "malformed request frame";
    } else {
      response = serve_one(*request, extractor);
      exiting = request->verb == Verb::kExit;
    }
    response.served = ++served;
    response.rss_kb = self_rss_kb();

    const std::string frame = encode_frame(encode_response(response));
    if (!write_full(response_fd, frame.data(), frame.size()))
      ::_exit(0);  // parent gone mid-response
    if (exiting) ::_exit(0);
  }
}

}  // namespace gpuperf::sandbox
