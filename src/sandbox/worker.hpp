// The child side of the DCA sandbox (docs/ROBUSTNESS.md): a forked
// worker process that serves feature-extraction requests over a pipe
// pair until the parent closes the request pipe, recycles it, or kills
// it.  Everything here runs post-fork in a single-threaded process and
// terminates only through _exit() — never by unwinding back into the
// parent's copy of main().
#pragma once

#include <cstddef>

namespace gpuperf::sandbox {

/// Hard resource caps applied by the worker to itself before serving.
/// Zero disables the respective cap.  RLIMIT_CORE is always zeroed —
/// a crashing worker must die fast, not dump gigabytes of core.
struct WorkerLimits {
  std::size_t address_space_mb = 0;  // RLIMIT_AS
  int cpu_seconds = 0;               // RLIMIT_CPU (cumulative!)
  int open_files = 0;                // RLIMIT_NOFILE
};

/// Worker entry point, called in the child immediately after fork()
/// (the pool has already called fault::child_after_fork()).  Installs
/// PR_SET_PDEATHSIG, applies `limits`, then loops: read a GPWK frame
/// from `request_fd`, serve it, write the response to `response_fd`.
/// Exits via _exit(0) on request-pipe EOF or an explicit exit verb.
[[noreturn]] void worker_main(int request_fd, int response_fd,
                              const WorkerLimits& limits);

}  // namespace gpuperf::sandbox
