// Parent side of the DCA sandbox (docs/ROBUSTNESS.md): a pre-forked
// pool of analysis worker processes with crash-only recovery.  The
// serving layer routes feature extraction here instead of running the
// symbolic executor in-process; a worker that segfaults, hangs past the
// hard wall-clock deadline, or balloons past the RSS ceiling is simply
// SIGKILLed and respawned — the parent never shares a fate with the
// analysis it is running.
//
// Failure taxonomy seen by callers:
//   AnalysisTimeout   the worker's cooperative Deadline expired (same
//                     type the in-process path throws)
//   AnalysisCrashed   the worker died, was hard-killed, or broke the
//                     pipe protocol — the crash-only signal, mapped to
//                     the `analysis_crashed` error code upstream
//   std::runtime_error  typed analysis failure forwarded from the
//                     worker (bad kernel, injected fault, OOM refusal)
#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "core/features.hpp"
#include "sandbox/wire.hpp"
#include "sandbox/worker.hpp"

namespace gpuperf::sandbox {

/// A sandboxed analysis worker died instead of answering: killed by a
/// signal, hard-killed by the pool's reaper, or it corrupted the pipe
/// protocol.  Distinct from AnalysisTimeout (cooperative, the analysis
/// itself noticed) and from analysis failures (the worker answered
/// with a typed error).
class AnalysisCrashed : public std::runtime_error {
 public:
  explicit AnalysisCrashed(const std::string& what)
      : std::runtime_error(what) {}
};

struct PoolOptions {
  int workers = 2;
  /// SIGKILL a worker that has not answered after this many wall-clock
  /// milliseconds, regardless of its cooperative deadline.  This is the
  /// backstop for hangs the Deadline cannot see (tight native loops,
  /// a worker stuck on an inherited lock).
  int hard_timeout_ms = 30000;
  /// Kill + respawn a worker whose self-reported RSS exceeds this
  /// (MiB); 0 disables.  Catches slow leaks and injected bloat.
  std::size_t worker_rss_mb = 512;
  /// Child-side RLIMIT_AS in MiB (0 = unlimited): allocation refusal
  /// inside the analysis instead of host-wide memory pressure.
  std::size_t worker_as_mb = 0;
  /// Child-side RLIMIT_CPU in seconds.  Cumulative per process, so this
  /// must cover a worker's whole recycle window, not one request.
  int worker_cpu_seconds = 60;
  int worker_open_files = 64;  // child-side RLIMIT_NOFILE
  /// Gracefully recycle a worker after this many requests (bounds
  /// leak accumulation and resets the cumulative RLIMIT_CPU clock).
  std::uint64_t recycle_requests = 256;
  /// Respawn backoff after a failed fork(): doubles from `initial` to
  /// `max` while spawns keep failing, resets on any served request.
  int respawn_backoff_initial_ms = 50;
  int respawn_backoff_max_ms = 2000;
  /// When non-empty, crashing module fingerprints are appended to
  /// <dir>/quarantine.log — the flight recorder consulted post-mortem.
  std::string quarantine_dir;
};

/// Worker lifecycle counters (see docs/ROBUSTNESS.md for the exact
/// event each one counts).  Exposed verbatim in serve stats.
struct PoolStats {
  std::uint64_t requests = 0;        // round-trips attempted
  std::uint64_t worker_crashes = 0;  // uncommanded deaths
  std::uint64_t worker_kills_timeout = 0;  // hard-deadline SIGKILLs
  std::uint64_t worker_kills_oom = 0;      // RSS-ceiling kills
  std::uint64_t worker_recycles = 0;       // graceful request-count
  std::uint64_t worker_respawns = 0;       // spawns after the pre-fork
};

class WorkerPool {
 public:
  /// Pre-forks `options.workers` children.  A failed initial spawn is
  /// tolerated (the slot respawns on demand); an all-failed pre-fork
  /// still constructs — crash-only means the pool heals, not aborts.
  explicit WorkerPool(PoolOptions options);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Feature extraction in a sandboxed worker.  Blocks until a worker
  /// is free (bounded by `deadline` and the hard timeout).
  /// `fingerprint` (hex topology hash, may be empty) is recorded in
  /// the quarantine log when the request kills its worker.
  core::ModelFeatures compute(const std::string& model,
                              const Deadline& deadline,
                              const std::string& fingerprint);

  /// Parse raw PTX in a sandboxed worker — the corpus-replay surface.
  /// Throws CheckError on rejection, mirroring ptx::parse_ptx.
  void check_ptx(const std::string& text, const Deadline& deadline);

  PoolStats stats() const;

  /// Workers currently running (spawned and not yet reaped).
  int alive_workers() const;

  /// Graceful shutdown: stop admitting requests, EOF every idle
  /// worker's request pipe, wait up to `timeout_ms` for exits, then
  /// SIGKILL and reap whatever remains.  Idempotent.
  void shutdown(int timeout_ms);

 private:
  enum class SlotState { kEmpty, kIdle, kBusy };

  struct Slot {
    SlotState state = SlotState::kEmpty;
    pid_t pid = -1;
    int request_fd = -1;   // parent writes requests here
    int response_fd = -1;  // parent reads responses here
    std::uint64_t served = 0;
  };

  bool spawn_locked(Slot& slot, bool initial);
  int acquire(const Deadline& deadline);
  void release(int index);
  /// SIGKILL + reap + close; `slot` becomes kEmpty.  Caller holds the
  /// slot as kBusy (so no lock is needed for the fds).
  void destroy_slot(Slot& slot);
  /// Close the request pipe (EOF = graceful exit), wait briefly, then
  /// escalate to destroy_slot if the worker lingers.
  void recycle_slot(Slot& slot);
  void quarantine(const std::string& fingerprint,
                  const std::string& model, const std::string& reason);

  /// One request round-trip on an acquired slot.  Throws the taxonomy
  /// documented on the class; always leaves the slot released.
  WorkerResponse roundtrip(int index, const WorkerRequest& request,
                           const Deadline& deadline,
                           const std::string& fingerprint);

  const PoolOptions options_;
  const WorkerLimits limits_;

  mutable std::mutex mutex_;
  std::condition_variable slot_available_;
  std::vector<Slot> slots_;
  bool shutdown_ = false;
  int backoff_ms_ = 0;  // 0 = healthy, else current respawn backoff
  std::chrono::steady_clock::time_point next_spawn_{};

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> kills_timeout_{0};
  std::atomic<std::uint64_t> kills_oom_{0};
  std::atomic<std::uint64_t> recycles_{0};
  std::atomic<std::uint64_t> respawns_{0};
};

}  // namespace gpuperf::sandbox
