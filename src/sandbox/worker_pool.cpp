#include "sandbox/worker_pool.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/subprocess.hpp"
#include "sandbox/wire.hpp"

namespace fs = std::filesystem;

namespace gpuperf::sandbox {

namespace {

using Clock = std::chrono::steady_clock;

/// Extra wall-clock patience beyond the cooperative deadline: a worker
/// whose Deadline just expired needs a moment to unwind, serialize and
/// write the timeout response before the reaper concludes it hung.
constexpr int kCooperativeGraceMs = 1000;

std::int64_t epoch_seconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WorkerPool::WorkerPool(PoolOptions options)
    : options_(std::move(options)),
      limits_{options_.worker_as_mb, options_.worker_cpu_seconds,
              options_.worker_open_files} {
  ignore_sigpipe();
  slots_.resize(std::max(1, options_.workers));
  std::lock_guard<std::mutex> lock(mutex_);
  for (Slot& slot : slots_) spawn_locked(slot, /*initial=*/true);
}

WorkerPool::~WorkerPool() { shutdown(500); }

bool WorkerPool::spawn_locked(Slot& slot, bool initial) {
  Pipe request_pipe;
  Pipe response_pipe;
  try {
    request_pipe = make_pipe();
    response_pipe = make_pipe();
  } catch (const CheckError&) {
    // fd exhaustion — back off and let the next acquire retry
    backoff_ms_ = backoff_ms_ == 0
                      ? options_.respawn_backoff_initial_ms
                      : std::min(backoff_ms_ * 2,
                                 options_.respawn_backoff_max_ms);
    next_spawn_ = Clock::now() + std::chrono::milliseconds(backoff_ms_);
    close_fd(request_pipe.read_fd);
    close_fd(request_pipe.write_fd);
    return false;
  }

  pid_t pid;
  {
    // Hold the fault-registry lock across fork() so the child's copy
    // of the registry is never torn mid-mutation by another thread.
    auto fork_guard = fault::registry_fork_lock();
    pid = ::fork();
    if (pid == 0) {
      // Child: single-threaded from here on.  Repair the inherited
      // registry, drop the parent's pipe ends, never return.
      fault::child_after_fork();
      close_fd(request_pipe.write_fd);
      close_fd(response_pipe.read_fd);
      worker_main(request_pipe.read_fd, response_pipe.write_fd, limits_);
    }
  }

  if (pid < 0) {
    close_fd(request_pipe.read_fd);
    close_fd(request_pipe.write_fd);
    close_fd(response_pipe.read_fd);
    close_fd(response_pipe.write_fd);
    backoff_ms_ = backoff_ms_ == 0
                      ? options_.respawn_backoff_initial_ms
                      : std::min(backoff_ms_ * 2,
                                 options_.respawn_backoff_max_ms);
    next_spawn_ = Clock::now() + std::chrono::milliseconds(backoff_ms_);
    return false;
  }

  close_fd(request_pipe.read_fd);
  close_fd(response_pipe.write_fd);
  slot.pid = pid;
  slot.request_fd = request_pipe.write_fd;
  slot.response_fd = response_pipe.read_fd;
  slot.served = 0;
  slot.state = SlotState::kIdle;
  if (!initial) respawns_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int WorkerPool::acquire(const Deadline& deadline) {
  std::int64_t budget_ms = options_.hard_timeout_ms;
  if (deadline.timed())
    budget_ms = std::min<std::int64_t>(
        budget_ms, deadline.remaining_ms() + kCooperativeGraceMs);
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(std::max<std::int64_t>(
                         budget_ms, 1));

  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_)
      throw AnalysisCrashed("sandbox worker pool is shutting down");

    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state == SlotState::kIdle) {
        slots_[i].state = SlotState::kBusy;
        return static_cast<int>(i);
      }
    }

    const Clock::time_point now = Clock::now();
    if (now >= next_spawn_) {
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].state != SlotState::kEmpty) continue;
        if (spawn_locked(slots_[i], /*initial=*/false)) {
          slots_[i].state = SlotState::kBusy;
          return static_cast<int>(i);
        }
        break;  // spawn failed → backoff armed; don't hammer every slot
      }
    }

    Clock::time_point wake = give_up;
    if (next_spawn_ > now && next_spawn_ < wake) wake = next_spawn_;
    slot_available_.wait_until(lock, wake);
    if (Clock::now() >= give_up)
      throw AnalysisCrashed(
          "no sandbox worker became available within " +
          std::to_string(budget_ms) + " ms");
  }
}

void WorkerPool::release(int index) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[index];
  if (shutdown_ && slot.pid > 0)
    close_fd(slot.request_fd);  // EOF → graceful exit; sweep reaps
  slot.state = slot.pid > 0 ? SlotState::kIdle : SlotState::kEmpty;
  slot_available_.notify_all();
}

void WorkerPool::destroy_slot(Slot& slot) {
  if (slot.pid > 0) {
    ::kill(slot.pid, SIGKILL);
    int status = 0;
    wait_exit(slot.pid, &status, 5000);
    slot.pid = -1;
  }
  close_fd(slot.request_fd);
  close_fd(slot.response_fd);
  slot.served = 0;
}

void WorkerPool::recycle_slot(Slot& slot) {
  close_fd(slot.request_fd);  // EOF: the worker _exit(0)s on its own
  int status = 0;
  if (slot.pid > 0 && !wait_exit(slot.pid, &status, 2000)) {
    ::kill(slot.pid, SIGKILL);
    wait_exit(slot.pid, &status, 5000);
  }
  slot.pid = -1;
  close_fd(slot.response_fd);
  slot.served = 0;
}

void WorkerPool::quarantine(const std::string& fingerprint,
                            const std::string& model,
                            const std::string& reason) {
  if (options_.quarantine_dir.empty()) return;
  // Flight-recorder semantics: best effort, never let bookkeeping of a
  // crash become a second failure.
  try {
    fs::create_directories(options_.quarantine_dir);
    std::ofstream out(
        fs::path(options_.quarantine_dir) / "quarantine.log",
        std::ios::app);
    out << epoch_seconds() << " fingerprint="
        << (fingerprint.empty() ? "-" : fingerprint)
        << " model=" << (model.empty() ? "-" : model)
        << " reason=" << reason << "\n";
  } catch (...) {
  }
}

WorkerResponse WorkerPool::roundtrip(int index,
                                     const WorkerRequest& request,
                                     const Deadline& deadline,
                                     const std::string& fingerprint) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  // The slot is kBusy: this thread owns its fds and pid exclusively
  // until release(), so no lock is needed on the hot path.
  Slot& slot = slots_[index];

  const std::string frame = encode_frame(encode_request(request));
  if (!write_full(slot.request_fd, frame.data(), frame.size())) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    int status = 0;
    std::string death = "pipe broken";
    if (slot.pid > 0 && wait_exit(slot.pid, &status, 2000)) {
      death = describe_wait_status(status);
      slot.pid = -1;  // already reaped
    }
    destroy_slot(slot);
    quarantine(fingerprint, request.model, "died before request: " + death);
    release(index);
    throw AnalysisCrashed("sandbox worker died before accepting request (" +
                          death + ")");
  }

  std::int64_t patience_ms = options_.hard_timeout_ms;
  if (deadline.timed())
    patience_ms = std::min<std::int64_t>(
        patience_ms, deadline.remaining_ms() + kCooperativeGraceMs);

  if (!poll_readable(slot.response_fd,
                     static_cast<int>(std::max<std::int64_t>(
                         patience_ms, 1)))) {
    // The hard reaper: cooperative deadlines cannot stop a tight native
    // loop or a worker wedged on an inherited lock — SIGKILL can.
    kills_timeout_.fetch_add(1, std::memory_order_relaxed);
    destroy_slot(slot);
    quarantine(fingerprint, request.model,
               "hard timeout after " + std::to_string(patience_ms) + " ms");
    release(index);
    throw AnalysisCrashed("sandbox worker exceeded the hard deadline (" +
                          std::to_string(patience_ms) + " ms) and was killed");
  }

  const auto payload = read_frame(slot.response_fd);
  if (!payload) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
    int status = 0;
    std::string death = "no exit status";
    if (slot.pid > 0 && wait_exit(slot.pid, &status, 2000)) {
      death = describe_wait_status(status);
      slot.pid = -1;  // already reaped
    }
    destroy_slot(slot);
    quarantine(fingerprint, request.model, "crashed: " + death);
    release(index);
    throw AnalysisCrashed("sandbox worker crashed mid-request (" + death +
                          ")");
  }

  const auto response = parse_response(*payload);
  if (!response) {
    // A well-framed but unparsable response is as untrustworthy as a
    // crash: the worker's memory may be corrupted.  Kill it.
    crashes_.fetch_add(1, std::memory_order_relaxed);
    destroy_slot(slot);
    quarantine(fingerprint, request.model, "protocol violation");
    release(index);
    throw AnalysisCrashed("sandbox worker broke the pipe protocol");
  }

  slot.served = response->served;
  if (options_.worker_rss_mb > 0 &&
      response->rss_kb > options_.worker_rss_mb * 1024) {
    kills_oom_.fetch_add(1, std::memory_order_relaxed);
    destroy_slot(slot);
  } else if (options_.recycle_requests > 0 &&
             slot.served >= options_.recycle_requests) {
    recycles_.fetch_add(1, std::memory_order_relaxed);
    recycle_slot(slot);
  }

  {
    // A completed round-trip proves spawning works: reset the backoff.
    std::lock_guard<std::mutex> lock(mutex_);
    backoff_ms_ = 0;
    next_spawn_ = Clock::time_point{};
  }
  release(index);
  return *response;
}

core::ModelFeatures WorkerPool::compute(const std::string& model,
                                        const Deadline& deadline,
                                        const std::string& fingerprint) {
  WorkerRequest request;
  request.verb = Verb::kCompute;
  request.model = model;
  if (deadline.timed())
    request.deadline_ms =
        std::max<std::int64_t>(1, deadline.remaining_ms());
  request.step_budget = deadline.step_budget();
  // Chaos sites armed in the parent fire in the worker: ship a
  // snapshot of every armed dca.* site with the request.
  request.fault_spec = fault::armed_spec("dca.");

  const int index = acquire(deadline);
  const WorkerResponse response =
      roundtrip(index, request, deadline, fingerprint);
  switch (response.status) {
    case Status::kOk:
      return response.features;
    case Status::kTimeout:
      throw AnalysisTimeout(response.error);
    case Status::kInvalid:
      throw std::runtime_error("sandbox request rejected: " +
                               response.error);
    case Status::kFailed:
      break;
  }
  throw std::runtime_error(response.error.empty()
                               ? std::string("analysis failed in worker")
                               : response.error);
}

void WorkerPool::check_ptx(const std::string& text,
                           const Deadline& deadline) {
  WorkerRequest request;
  request.verb = Verb::kPtx;
  request.body = text;
  if (deadline.timed())
    request.deadline_ms =
        std::max<std::int64_t>(1, deadline.remaining_ms());
  request.fault_spec = fault::armed_spec("dca.");

  const int index = acquire(deadline);
  const WorkerResponse response =
      roundtrip(index, request, deadline, /*fingerprint=*/"");
  switch (response.status) {
    case Status::kOk:
      return;
    case Status::kTimeout:
      throw AnalysisTimeout(response.error);
    case Status::kInvalid:
    case Status::kFailed:
      break;
  }
  // Mirror the in-process parse_ptx contract: rejection is a CheckError.
  throw CheckError(response.error.empty() ? "ptx rejected in worker"
                                          : response.error);
}

PoolStats WorkerPool::stats() const {
  PoolStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.worker_crashes = crashes_.load(std::memory_order_relaxed);
  out.worker_kills_timeout =
      kills_timeout_.load(std::memory_order_relaxed);
  out.worker_kills_oom = kills_oom_.load(std::memory_order_relaxed);
  out.worker_recycles = recycles_.load(std::memory_order_relaxed);
  out.worker_respawns = respawns_.load(std::memory_order_relaxed);
  return out;
}

int WorkerPool::alive_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int alive = 0;
  for (const Slot& slot : slots_)
    if (slot.pid > 0) ++alive;
  return alive;
}

void WorkerPool::shutdown(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_ = true;
  slot_available_.notify_all();

  // EOF every idle worker now: they _exit(0) on their own.
  for (Slot& slot : slots_)
    if (slot.state == SlotState::kIdle) close_fd(slot.request_fd);

  // Give in-flight requests until the drain deadline to finish; their
  // owning threads release (and EOF) the slots as they complete.
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(std::max(0, timeout_ms));
  auto any_busy = [this] {
    return std::any_of(slots_.begin(), slots_.end(), [](const Slot& s) {
      return s.state == SlotState::kBusy;
    });
  };
  while (any_busy() && Clock::now() < give_up)
    slot_available_.wait_until(lock, give_up);

  for (Slot& slot : slots_) {
    if (slot.state == SlotState::kBusy) {
      // Drain deadline passed with the request still in flight: kill
      // the worker out from under it.  The owning thread sees the pipe
      // EOF, classifies it as a crash, and reaps/closes — we must not
      // touch its fds from here.
      if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
      continue;
    }
    if (slot.pid > 0) {
      int status = 0;
      if (!wait_exit(slot.pid, &status, 200)) {
        ::kill(slot.pid, SIGKILL);
        wait_exit(slot.pid, &status, 2000);
      }
      slot.pid = -1;
    }
    close_fd(slot.request_fd);
    close_fd(slot.response_fd);
    slot.state = SlotState::kEmpty;
  }
}

}  // namespace gpuperf::sandbox
