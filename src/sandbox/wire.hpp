// Pipe protocol between the serving parent and its sandboxed DCA
// workers (docs/ROBUSTNESS.md "Crash isolation").  One frame per
// message, CRC-checked like the feature-store journal:
//
//   "GPWK" | u32 LE payload length | u32 LE crc32(payload) | payload
//
// The payload is line-oriented text — a header block terminated by a
// blank line, then an optional free-form body (serialized features, or
// raw PTX for the corpus-replay verb).  A worker is a crash domain, so
// the parent treats *any* framing violation (bad magic, CRC mismatch,
// truncated payload, oversized length) as evidence the worker died
// mid-write and recycles it; nothing here trusts the peer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/features.hpp"

namespace gpuperf::sandbox {

/// Frames past this payload size are a protocol violation (a healthy
/// worker never sends more than a few KiB of features text).
constexpr std::size_t kMaxFramePayload = 1u << 20;

enum class Verb : std::uint8_t {
  kPing = 0,     // liveness probe; response carries rss only
  kCompute = 1,  // DCA feature extraction for a zoo model
  kPtx = 2,      // parse raw PTX bytes (fuzz-corpus replay surface)
  kExit = 3,     // graceful recycle: respond, then _exit(0)
};

enum class Status : std::uint8_t {
  kOk = 0,
  kTimeout = 1,  // cooperative Deadline expired inside the worker
  kFailed = 2,   // typed analysis failure (bad kernel, injected fault,
                 // allocation refusal under RLIMIT_AS)
  kInvalid = 3,  // malformed request (a parent bug, not a worker crash)
};

struct WorkerRequest {
  Verb verb = Verb::kPing;
  std::string model;           // kCompute: zoo model name
  std::int64_t deadline_ms = 0;   // remaining wall budget; 0 = unlimited
  std::uint64_t step_budget = 0;  // 0 = unlimited
  std::string fault_spec;      // armed dca.* sites, grammar of fault.hpp
  std::string body;            // kPtx: raw PTX source
};

struct WorkerResponse {
  Status status = Status::kFailed;
  std::string error;          // non-ok: one-line message
  std::size_t rss_kb = 0;     // worker RSS after the request
  std::uint64_t served = 0;   // requests this worker has handled
  core::ModelFeatures features;  // kCompute + kOk only
};

std::string encode_request(const WorkerRequest& request);
std::string encode_response(const WorkerResponse& response);

/// nullopt on any malformed payload — never throws, never trusts.
std::optional<WorkerRequest> parse_request(const std::string& payload);
std::optional<WorkerResponse> parse_response(const std::string& payload);

/// Wrap a payload in the GPWK frame.
std::string encode_frame(const std::string& payload);

/// Blocking frame read from `fd` (EINTR-safe): reads the header, then
/// the payload, validates magic/length/CRC.  Returns nullopt on EOF or
/// any violation.  Used by both sides; the parent bounds the wait with
/// poll_readable() *before* calling.
std::optional<std::string> read_frame(int fd);

std::string_view status_name(Status status);

}  // namespace gpuperf::sandbox
