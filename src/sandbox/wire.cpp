#include "sandbox/wire.hpp"

#include <sstream>

#include "common/check.hpp"
#include "common/crc32.hpp"
#include "common/strings.hpp"
#include "common/subprocess.hpp"

namespace gpuperf::sandbox {

namespace {

constexpr char kFrameMagic[4] = {'G', 'P', 'W', 'K'};
constexpr std::size_t kFrameHeaderBytes = 12;  // magic + length + crc

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

std::uint32_t get_u32_le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]))
          << 24);
}

std::string_view verb_name(Verb verb) {
  switch (verb) {
    case Verb::kPing: return "ping";
    case Verb::kCompute: return "compute";
    case Verb::kPtx: return "ptx";
    case Verb::kExit: return "exit";
  }
  return "ping";
}

std::optional<Verb> parse_verb(std::string_view name) {
  if (name == "ping") return Verb::kPing;
  if (name == "compute") return Verb::kCompute;
  if (name == "ptx") return Verb::kPtx;
  if (name == "exit") return Verb::kExit;
  return std::nullopt;
}

std::optional<Status> parse_status(std::string_view name) {
  if (name == "ok") return Status::kOk;
  if (name == "timeout") return Status::kTimeout;
  if (name == "failed") return Status::kFailed;
  if (name == "invalid") return Status::kInvalid;
  return std::nullopt;
}

std::string full_precision(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Split the payload at the first blank line into (header, body).  The
/// header block never contains an empty line; the body is verbatim.
std::pair<std::string, std::string> split_header(
    const std::string& payload) {
  const auto pos = payload.find("\n\n");
  if (pos == std::string::npos) return {payload, std::string()};
  return {payload.substr(0, pos + 1), payload.substr(pos + 2)};
}

/// `rest` of a header line after "key " — preserves internal spaces.
std::string line_rest(const std::string& line, std::size_t key_len) {
  if (line.size() <= key_len + 1) return std::string();
  return line.substr(key_len + 1);
}

}  // namespace

std::string_view status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kTimeout: return "timeout";
    case Status::kFailed: return "failed";
    case Status::kInvalid: return "invalid";
  }
  return "failed";
}

std::string encode_request(const WorkerRequest& request) {
  std::ostringstream os;
  os << "gpuperf-worker-req v1\n";
  os << "verb " << verb_name(request.verb) << "\n";
  if (!request.model.empty()) os << "model " << request.model << "\n";
  if (request.deadline_ms > 0)
    os << "deadline_ms " << request.deadline_ms << "\n";
  if (request.step_budget > 0)
    os << "step_budget " << request.step_budget << "\n";
  // The fault-spec grammar is space-free (site=action[:p][*n];...), so
  // a single header line round-trips it exactly.
  if (!request.fault_spec.empty())
    os << "fault " << request.fault_spec << "\n";
  os << "\n";
  os << request.body;
  return os.str();
}

std::optional<WorkerRequest> parse_request(const std::string& payload) {
  const auto [header, body] = split_header(payload);
  WorkerRequest out;
  out.body = body;
  bool have_verb = false;
  try {
    std::istringstream is(header);
    std::string line;
    if (!std::getline(is, line) ||
        trim(line) != "gpuperf-worker-req v1")
      return std::nullopt;
    while (std::getline(is, line)) {
      if (trim(line).empty()) continue;
      const auto kv = split_ws(line);
      if (kv.empty()) continue;
      if (kv[0] == "verb" && kv.size() == 2) {
        const auto verb = parse_verb(kv[1]);
        if (!verb) return std::nullopt;
        out.verb = *verb;
        have_verb = true;
      } else if (kv[0] == "model" && kv.size() == 2) {
        out.model = kv[1];
      } else if (kv[0] == "deadline_ms" && kv.size() == 2) {
        out.deadline_ms = parse_int(kv[1]);
      } else if (kv[0] == "step_budget" && kv.size() == 2) {
        out.step_budget = static_cast<std::uint64_t>(parse_int(kv[1]));
      } else if (kv[0] == "fault" && kv.size() == 2) {
        out.fault_spec = kv[1];
      } else {
        return std::nullopt;
      }
    }
  } catch (const CheckError&) {
    return std::nullopt;
  }
  if (!have_verb) return std::nullopt;
  return out;
}

std::string encode_response(const WorkerResponse& response) {
  std::ostringstream os;
  os << "gpuperf-worker-resp v1\n";
  os << "status " << status_name(response.status) << "\n";
  os << "rss_kb " << response.rss_kb << "\n";
  os << "served " << response.served << "\n";
  if (!response.error.empty()) os << "error " << response.error << "\n";
  os << "\n";
  if (response.status == Status::kOk) {
    const core::ModelFeatures& f = response.features;
    // A ptx-verb success carries default features: the name is empty,
    // and an empty value would make the line unparsable — omit it.
    if (!f.model_name.empty()) os << "model " << f.model_name << "\n";
    os << "executed_instructions " << f.executed_instructions << "\n";
    os << "trainable_params " << f.trainable_params << "\n";
    os << "macs " << f.macs << "\n";
    os << "neurons " << f.neurons << "\n";
    os << "weighted_layers " << f.weighted_layers << "\n";
    os << "dca_seconds " << full_precision(f.dca_seconds) << "\n";
  }
  return os.str();
}

std::optional<WorkerResponse> parse_response(
    const std::string& payload) {
  const auto [header, body] = split_header(payload);
  WorkerResponse out;
  bool have_status = false;
  try {
    std::istringstream is(header);
    std::string line;
    if (!std::getline(is, line) ||
        trim(line) != "gpuperf-worker-resp v1")
      return std::nullopt;
    while (std::getline(is, line)) {
      if (trim(line).empty()) continue;
      const auto kv = split_ws(line);
      if (kv.empty()) continue;
      if (kv[0] == "status" && kv.size() == 2) {
        const auto status = parse_status(kv[1]);
        if (!status) return std::nullopt;
        out.status = *status;
        have_status = true;
      } else if (kv[0] == "rss_kb" && kv.size() == 2) {
        out.rss_kb = static_cast<std::size_t>(parse_int(kv[1]));
      } else if (kv[0] == "served" && kv.size() == 2) {
        out.served = static_cast<std::uint64_t>(parse_int(kv[1]));
      } else if (kv[0] == "error") {
        out.error = line_rest(line, 5);
      } else {
        return std::nullopt;
      }
    }
    if (!have_status) return std::nullopt;
    if (out.status == Status::kOk && !body.empty()) {
      std::istringstream bs(body);
      while (std::getline(bs, line)) {
        if (trim(line).empty()) continue;
        const auto kv = split_ws(line);
        if (kv.size() != 2) return std::nullopt;
        core::ModelFeatures& f = out.features;
        if (kv[0] == "model") f.model_name = kv[1];
        else if (kv[0] == "executed_instructions")
          f.executed_instructions = parse_int(kv[1]);
        else if (kv[0] == "trainable_params")
          f.trainable_params = parse_int(kv[1]);
        else if (kv[0] == "macs") f.macs = parse_int(kv[1]);
        else if (kv[0] == "neurons") f.neurons = parse_int(kv[1]);
        else if (kv[0] == "weighted_layers")
          f.weighted_layers = parse_int(kv[1]);
        else if (kv[0] == "dca_seconds")
          f.dca_seconds = parse_double(kv[1]);
        else return std::nullopt;
      }
    }
  } catch (const CheckError&) {
    return std::nullopt;
  }
  return out;
}

std::string encode_frame(const std::string& payload) {
  GP_CHECK_MSG(payload.size() <= kMaxFramePayload,
               "sandbox frame payload too large: " << payload.size());
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32_le(out, crc32(payload));
  out.append(payload);
  return out;
}

std::optional<std::string> read_frame(int fd) {
  char header[kFrameHeaderBytes];
  if (read_full(fd, header, sizeof(header)) != sizeof(header))
    return std::nullopt;
  if (std::string_view(header, 4) !=
      std::string_view(kFrameMagic, 4))
    return std::nullopt;
  const std::uint32_t length = get_u32_le(header + 4);
  const std::uint32_t crc = get_u32_le(header + 8);
  if (length > kMaxFramePayload) return std::nullopt;
  std::string payload(length, '\0');
  if (length > 0 &&
      read_full(fd, payload.data(), length) != length)
    return std::nullopt;
  if (crc32(payload) != crc) return std::nullopt;
  return payload;
}

}  // namespace gpuperf::sandbox
