// Group-commit micro-batching for predict requests.
//
// A request that arrives while no flush is running becomes the batch
// leader and flushes immediately (zero added latency when idle); while
// it drains, further requests pile into the queue and ship as one
// batch on the next round — so bursts of concurrent requests for the
// same model collapse into a single dynamic-code-analysis pass.  Each
// per-model group is dispatched to the shared thread pool; results come
// back through per-request futures.
//
// Fault tolerance: every job carries its request's Deadline (a group
// honors the most generous of its members), the number of outstanding
// jobs is bounded (submit sheds with a typed `overloaded` error beyond
// it), and any failure — predict_group throwing, a size-mismatched
// result, even the pool refusing the task — is fanned out to *every*
// future of the group, so no waiter can leak.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.hpp"
#include "common/thread_pool.hpp"
#include "gpu/device_spec.hpp"

namespace gpuperf::serve {

struct BatcherStats {
  std::uint64_t flushes = 0;          // drain rounds led by a request
  std::uint64_t batches = 0;          // per-model groups dispatched
  std::uint64_t batched_requests = 0; // requests that went through
  std::uint64_t max_batch = 0;        // largest per-model group seen
  std::uint64_t shed = 0;             // rejected by the outstanding bound
};

class PredictBatcher {
 public:
  /// `predict_group` scores one model on several devices in a single
  /// pass (features fetched once); it runs on pool workers and may
  /// throw — the exception is forwarded to every request of the group.
  /// The deadline is the loosest of the group's members.
  using GroupFn = std::function<std::vector<double>(
      const std::string& model,
      const std::vector<const gpu::DeviceSpec*>& devices,
      const Deadline& deadline)>;

  /// `max_outstanding` bounds submitted-but-unresolved jobs; 0 means
  /// unbounded.  Beyond it submit() throws ServeError(kOverloaded).
  PredictBatcher(ThreadPool& pool, GroupFn predict_group,
                 std::size_t max_outstanding = 0);

  /// Enqueue one prediction; the future resolves when its batch ran.
  std::future<double> submit(const std::string& model,
                             const gpu::DeviceSpec& device,
                             const Deadline& deadline = {});

  BatcherStats stats() const;

 private:
  struct Job {
    std::string model;
    const gpu::DeviceSpec* device;
    Deadline deadline;
    std::promise<double> promise;
  };

  void dispatch(std::vector<Job> batch);
  void settle(Job& job, const double* ipc, std::exception_ptr error);

  ThreadPool& pool_;
  GroupFn predict_group_;
  const std::size_t max_outstanding_;
  std::mutex mutex_;
  std::vector<Job> queue_;
  bool flushing_ = false;
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace gpuperf::serve
