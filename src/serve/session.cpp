#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/limits.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "core/dataset_builder.hpp"
#include "common/mapped_buffer.hpp"
#include "gpu/device_db.hpp"
#include "ptx/counter.hpp"
#include "ptx/depgraph.hpp"
#include "registry/hash.hpp"
#include "sandbox/worker_pool.hpp"
#include "serve/errors.hpp"

namespace gpuperf::serve {

namespace {

std::string result_key(const std::string& model,
                       const std::string& device) {
  return model + '\x1f' + device;
}

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeOptions ServeSession::apply_dca_spill_knobs(ServeOptions options) {
  if (!options.dca_spill_dir.empty() || options.dca_spill_budget_bytes > 0) {
    SpillConfig spill = dca_spill_config();
    if (!options.dca_spill_dir.empty()) spill.dir = options.dca_spill_dir;
    if (options.dca_spill_budget_bytes > 0)
      spill.resident_budget_bytes = options.dca_spill_budget_bytes;
    set_dca_spill_config(std::move(spill));
  }
  return options;
}

ServeSession::ServeSession(ServeOptions options)
    : options_(apply_dca_spill_knobs(std::move(options))),
      static_reports_(options_.cache_capacity, options_.cache_shards),
      features_(options_.cache_capacity, options_.cache_shards),
      results_(options_.cache_capacity, options_.cache_shards),
      pool_(options_.n_threads) {
  if (!options_.registry_dir.empty())
    registry_ =
        std::make_unique<registry::ModelRegistry>(options_.registry_dir);
  if (!options_.feature_store_dir.empty()) {
    feature_store_ =
        std::make_unique<registry::FeatureStore>(options_.feature_store_dir);
    // The sweep cache shares the store directory (distinct journal
    // names), so one --store flag warm-starts both halves of a sweep.
    sweep_cache_ =
        std::make_unique<dse::SweepCache>(options_.feature_store_dir);
  }

  batcher_ = std::make_unique<PredictBatcher>(
      pool_,
      [this](const std::string& model,
             const std::vector<const gpu::DeviceSpec*>& devices,
             const Deadline& deadline) {
        return predict_group(model, devices, deadline);
      },
      options_.max_queue);

  // Pre-register the breaker counters so dashboards (and the stats
  // verb) show them at zero instead of omitting them until the first
  // breaker event.
  metrics_.counter("breaker_open");
  metrics_.counter("breaker_half_open");
  metrics_.counter("breaker_fast_fail");

  if (options_.isolate_dca) {
    sandbox::PoolOptions pool;
    pool.workers = std::max(1, options_.dca_workers);
    pool.hard_timeout_ms = options_.dca_hard_timeout_ms;
    pool.worker_rss_mb = options_.dca_worker_rss_mb;
    pool.worker_as_mb = options_.dca_worker_as_mb;
    pool.quarantine_dir = options_.dca_quarantine_dir;
    sandbox_pool_ = std::make_unique<sandbox::WorkerPool>(pool);
    // Worker lifecycle counters (docs/ROBUSTNESS.md), pre-registered
    // at zero like the breaker's.
    metrics_.counter("analysis_crashes");
    metrics_.counter("worker_crashes");
    metrics_.counter("worker_kills_timeout");
    metrics_.counter("worker_kills_oom");
    metrics_.counter("worker_recycles");
    metrics_.counter("worker_respawns");
  }

  // Likewise the out-of-core graph counters (docs/PERF.md "Graph memory
  // layout"): zeros until the first dependency graph is built/spilled.
  metrics_.counter("depgraph_csr_bytes");
  metrics_.counter("dca_spill_files");
  metrics_.counter("dca_spill_bytes");

  // Warm-start the degraded-path imputation from every DCA result the
  // persistent store already holds: a fresh process can then serve a
  // sensible fallback before its first successful DCA pass.
  if (feature_store_) {
    try {
      const auto aggregate = feature_store_->aggregate();
      observed_instruction_sum_.store(aggregate.executed_instruction_sum);
      observed_instruction_count_.store(aggregate.entries);
    } catch (const std::exception& e) {
      // The store being unreadable must not stop the server: the
      // imputation just starts cold.
      GP_LOG(kWarn) << "feature store scan failed: " << e.what();
    }
  }

  if (registry_) {
    registry::Bundle bundle = registry_->load(options_.registry_version);
    std::string version = bundle.version;
    install_estimator(std::move(bundle.estimator), std::move(version),
                      std::move(bundle.manifest), "registry");
  } else if (!options_.tree_path.empty()) {
    install_estimator(
        core::PerformanceEstimator::load(options_.tree_path), "", {},
        "file");
  } else {
    core::DatasetOptions dataset;
    dataset.models = options_.train_models;
    dataset.devices = options_.train_devices;
    core::PerformanceEstimator estimator(options_.regressor_id,
                                         options_.seed);
    estimator.train(core::DatasetBuilder(dataset).build());
    install_estimator(std::move(estimator), "", {}, "trained");
  }

  if (registry_ && options_.registry_poll_ms > 0) start_polling();
}

ServeSession::~ServeSession() {
  if (poll_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(poll_mutex_);
      poll_stop_ = true;
    }
    poll_cv_.notify_all();
    poll_thread_.join();
  }
}

void ServeSession::install_estimator(core::PerformanceEstimator estimator,
                                     std::string version,
                                     registry::Manifest manifest,
                                     std::string source) {
  auto owned = std::make_shared<core::PerformanceEstimator>(
      std::move(estimator));
  // One-shot estimator callers share the service's DCA cache too.
  owned->set_feature_provider(
      [this](const std::string& model) { return features_for(model); });
  // Sweep-cache identity of this estimator (docs/DSE.md): the registry
  // version when there is one, else a content hash — computed once per
  // install so sweeps never pay the serialization.
  std::string bundle_key = dse::make_bundle_key(*owned, version);
  std::lock_guard<std::mutex> lock(estimator_mutex_);
  estimator_ = std::move(owned);
  bundle_key_ = std::move(bundle_key);
  live_version_ = std::move(version);
  live_manifest_ = std::move(manifest);
  model_source_ = std::move(source);
}

std::shared_ptr<const core::PerformanceEstimator>
ServeSession::estimator_ptr() const {
  std::lock_guard<std::mutex> lock(estimator_mutex_);
  return estimator_;
}

const core::PerformanceEstimator& ServeSession::estimator() const {
  std::lock_guard<std::mutex> lock(estimator_mutex_);
  return *estimator_;
}

std::string ServeSession::live_version() const {
  std::lock_guard<std::mutex> lock(estimator_mutex_);
  return live_version_;
}

std::string ServeSession::reload(const std::string& version) {
  GP_CHECK_MSG(registry_ != nullptr,
               "no registry configured (start with --registry)");
  // The ready verb reports ready:false for the duration of the swap
  // (including any quarantine repair registry_->load performs).
  reloading_.store(true, std::memory_order_release);
  struct ClearFlag {
    std::atomic<bool>& flag;
    ~ClearFlag() { flag.store(false, std::memory_order_release); }
  } clear{reloading_};
  registry::Bundle bundle = registry_->load(version);
  const std::string installed = bundle.version;
  install_estimator(std::move(bundle.estimator), installed,
                    std::move(bundle.manifest), "registry");
  // Predictions from the previous model must not be served as fresh;
  // DCA features are model-intrinsic and stay warm.
  results_.clear();
  reloads_.fetch_add(1);
  return installed;
}

void ServeSession::start_polling() {
  poll_thread_ = std::thread([this] {
    // On consecutive failures (dead registry volume, corrupt LATEST)
    // the poll interval doubles up to a cap, so a broken registry costs
    // a handful of reads per minute instead of a hot loop at --poll-ms;
    // one warning per failure streak keeps the log readable.
    int failure_streak = 0;
    constexpr int kMaxBackoffMs = 30'000;
    std::unique_lock<std::mutex> lock(poll_mutex_);
    while (!poll_stop_) {
      const int base = std::max(1, options_.registry_poll_ms);
      int wait_ms = base;
      for (int i = 0; i < std::min(failure_streak, 16) &&
                      wait_ms < kMaxBackoffMs;
           ++i)
        wait_ms *= 2;
      wait_ms = std::min(wait_ms, kMaxBackoffMs);
      poll_cv_.wait_for(lock, std::chrono::milliseconds(wait_ms));
      if (poll_stop_) break;
      lock.unlock();
      try {
        const std::string latest = registry_->latest_version();
        if (!latest.empty() && latest != live_version()) {
          reload(latest);
          GP_LOG(kInfo) << "registry poll: hot-reloaded " << latest;
        }
        if (failure_streak > 0)
          GP_LOG(kInfo) << "registry poll recovered after "
                        << failure_streak << " failures";
        failure_streak = 0;
        poll_failure_streak_.store(0, std::memory_order_relaxed);
      } catch (const std::exception& e) {
        metrics_.counter("registry_poll_failures").fetch_add(1);
        if (failure_streak == 0)
          GP_LOG(kWarn) << "registry poll failed (backing off): "
                        << e.what();
        ++failure_streak;
        // Readiness drops while the poller fights a broken registry:
        // a load balancer should stop routing to this process until
        // the repair lands.
        poll_failure_streak_.store(failure_streak,
                                   std::memory_order_relaxed);
      }
      lock.lock();
    }
  });
}

core::ModelFeatures ServeSession::run_dca(const std::string& model,
                                          const cnn::Model& cnn_model,
                                          const Deadline& deadline) {
  if (sandbox_pool_)
    return sandbox_pool_->compute(
        model, deadline, registry::hex64(module_fingerprint(model)));
  return extractor_.compute(cnn_model, deadline);
}

ServeSession::FeaturePtr ServeSession::compute_features(
    const std::string& model, const Deadline& deadline) {
  const cnn::Model cnn_model = cnn::zoo::build(model);
  // In isolated mode every dca.* chaos site fires inside the worker
  // (the pool ships an armed-site snapshot with each request), so the
  // parent-side point stays quiet — otherwise it would consume the
  // firing the worker was meant to see.
  if (!sandbox_pool_) GPUPERF_FAULT_POINT_D("dca.compute", &deadline);
  if (feature_store_) {
    const std::uint64_t key =
        registry::FeatureStore::topology_hash(cnn_model);
    try {
      if (FeaturePtr stored = feature_store_->get(key)) {
        store_hits_.fetch_add(1);
        observe_instructions(stored->executed_instructions);
        return stored;
      }
    } catch (const std::exception& e) {
      // An unreadable store is a miss, not a failed request.
      GP_LOG(kWarn) << "feature store read failed: " << e.what();
      metrics_.counter("store_read_failures").fetch_add(1);
    }
    auto computed = std::make_shared<const core::ModelFeatures>(
        run_dca(model, cnn_model, deadline));
    dca_computes_.fetch_add(1);
    observe_instructions(computed->executed_instructions);
    try {
      feature_store_->put(key, *computed);
    } catch (const std::exception& e) {
      // The features are in hand — failing to persist them must not
      // fail the prediction.
      GP_LOG(kWarn) << "feature store write failed: " << e.what();
      metrics_.counter("store_write_failures").fetch_add(1);
    }
    return computed;
  }
  auto computed = std::make_shared<const core::ModelFeatures>(
      run_dca(model, cnn_model, deadline));
  dca_computes_.fetch_add(1);
  observe_instructions(computed->executed_instructions);
  return computed;
}

ServeSession::FeaturePtr ServeSession::features_for(
    const std::string& model, const Deadline& deadline) {
  GP_CHECK_MSG(cnn::zoo::has_model(model),
               "unknown model '" << model << "'");
  // Single-flight: concurrent requests for one model share a compute.
  // If the winner's deadline expires, the cache propagates the
  // AnalysisTimeout to every waiter AND erases the entry, so the next
  // request retries with its own (possibly longer) budget.
  return features_.get_or_compute(
      model, [&] { return compute_features(model, deadline); });
}

std::vector<double> ServeSession::predict_group(
    const std::string& model,
    const std::vector<const gpu::DeviceSpec*>& devices,
    const Deadline& deadline) {
  // One snapshot for the whole group: a hot-reload mid-flight cannot
  // mix two models' predictions inside a batch.
  const auto estimator = estimator_ptr();
  const FeaturePtr features = features_for(model, deadline);
  std::vector<double> out;
  out.reserve(devices.size());
  for (const gpu::DeviceSpec* device : devices)
    out.push_back(estimator->predict(*features, *device));
  return out;
}

ServeSession::PredictOutcome ServeSession::predict_ipc(
    const std::string& model, const gpu::DeviceSpec& device,
    const Deadline& deadline) {
  const std::string key = result_key(model, device.name);
  if (const auto cached = results_.get(key)) return {*cached, true, false};
  double ipc = 0.0;
  if (options_.batching) {
    ipc = batcher_->submit(model, device, deadline).get();
  } else {
    ipc = predict_group(model, {&device}, deadline).front();
  }
  results_.put(key, std::make_shared<const double>(ipc));
  return {ipc, false, false};
}

std::uint64_t ServeSession::module_fingerprint(const std::string& model) {
  {
    std::lock_guard<std::mutex> lock(breaker_mutex_);
    const auto it = fingerprints_.find(model);
    if (it != fingerprints_.end()) return it->second;
  }
  // Layer-descriptor hash only — no PTX, no DCA — so the breaker can
  // key requests before any expensive work starts.
  const std::uint64_t fp =
      registry::FeatureStore::topology_hash(cnn::zoo::build(model));
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  fingerprints_.emplace(model, fp);
  return fp;
}

bool ServeSession::breaker_admit(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  Breaker& b = breakers_[fingerprint];
  if (b.open_until_ms == 0) return true;  // closed
  const std::int64_t now = steady_now_ms();
  if (now < b.open_until_ms) return false;  // open: fast-fail
  if (b.probe_in_flight) return false;  // half-open, probe already out
  // Cooldown elapsed: let exactly one request re-attempt the analysis.
  b.probe_in_flight = true;
  metrics_.counter("breaker_half_open").fetch_add(1);
  return true;
}

void ServeSession::breaker_record_success(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  Breaker& b = breakers_[fingerprint];
  b.consecutive_failures = 0;
  b.open_until_ms = 0;
  b.probe_in_flight = false;
}

void ServeSession::breaker_record_failure(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(breaker_mutex_);
  Breaker& b = breakers_[fingerprint];
  ++b.consecutive_failures;
  if (b.probe_in_flight) {
    // The half-open probe failed: straight back to open.
    b.probe_in_flight = false;
    b.open_until_ms = steady_now_ms() + options_.breaker_cooldown_ms;
    metrics_.counter("breaker_open").fetch_add(1);
    return;
  }
  if (b.open_until_ms == 0 &&
      b.consecutive_failures >= options_.breaker_threshold) {
    b.open_until_ms = steady_now_ms() + options_.breaker_cooldown_ms;
    metrics_.counter("breaker_open").fetch_add(1);
  }
}

ServeSession::PredictOutcome ServeSession::predict_or_degrade(
    const std::string& model, const gpu::DeviceSpec& device,
    const Deadline& deadline, bool allow_degrade) {
  const bool breaker_on = options_.breaker_threshold > 0;
  const std::uint64_t fp = breaker_on ? module_fingerprint(model) : 0;
  if (breaker_on && !breaker_admit(fp)) {
    // Open breaker: this module's DCA has failed repeatedly and its
    // cooldown hasn't produced a successful probe — skip the doomed
    // (and expensive) analysis outright.
    metrics_.counter("breaker_fast_fail").fetch_add(1);
    if (!allow_degrade)
      throw ServeError(
          ErrorCode::kAnalysisFailed,
          "circuit breaker open for '" + model +
              "': repeated analysis failures; retry after cooldown");
    return predict_degraded(model, device);
  }
  try {
    PredictOutcome outcome = predict_ipc(model, device, deadline);
    if (breaker_on) breaker_record_success(fp);
    return outcome;
  } catch (const ServeError&) {
    throw;  // overload shedding must reach the client as overloaded
  } catch (const AnalysisTimeout&) {
    metrics_.counter("analysis_timeouts").fetch_add(1);
    if (breaker_on) breaker_record_failure(fp);
    if (!allow_degrade) throw;
  } catch (const sandbox::AnalysisCrashed&) {
    // A sandboxed worker died under this module: the strongest breaker
    // signal there is, and exactly the failure the degraded static
    // path exists for.
    metrics_.counter("analysis_crashes").fetch_add(1);
    if (breaker_on) breaker_record_failure(fp);
    if (!allow_degrade) throw;
  } catch (const std::exception&) {
    metrics_.counter("analysis_failures").fetch_add(1);
    if (breaker_on) breaker_record_failure(fp);
    if (!allow_degrade) throw;
  }
  return predict_degraded(model, device);
}

void ServeSession::observe_instructions(
    std::int64_t executed_instructions) {
  observed_instruction_sum_.fetch_add(executed_instructions,
                                      std::memory_order_relaxed);
  observed_instruction_count_.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t ServeSession::imputed_executed_instructions(
    std::int64_t trainable_params) const {
  const std::uint64_t n = observed_instruction_count_.load();
  if (n > 0)
    return observed_instruction_sum_.load() /
           static_cast<std::int64_t>(n);
  // Cold start with no DCA observations at all: a params-proportional
  // guess keeps the feature in a plausible order of magnitude.
  constexpr std::int64_t kInstructionsPerParam = 16;
  return trainable_params * kInstructionsPerParam;
}

ServeSession::PredictOutcome ServeSession::predict_degraded(
    const std::string& model, const gpu::DeviceSpec& device) {
  const auto report = static_reports_.get_or_compute(model, [&] {
    return std::make_shared<const cnn::ModelReport>(
        analyzer_.analyze(cnn::zoo::build(model)));
  });
  core::ModelFeatures features;
  features.model_name = model;
  features.trainable_params = report->trainable_params;
  features.macs = report->macs;
  features.neurons = report->neurons;
  features.weighted_layers = report->weighted_layers;
  features.executed_instructions =
      imputed_executed_instructions(report->trainable_params);
  const double ipc = estimator_ptr()->predict(features, device);
  metrics_.counter("degraded").fetch_add(1);
  // Deliberately NOT stored in the result cache: the next request
  // should attempt the full analysis, not inherit the fallback.
  return {ipc, false, true};
}

Deadline ServeSession::deadline_for(const Request& request) const {
  std::int64_t ms = options_.default_deadline_ms;
  const std::string flag = request.cmd.flag_or("deadline-ms", "");
  if (!flag.empty()) ms = parse_int(flag);
  Deadline deadline = ms > 0 ? Deadline::after_ms(ms) : Deadline();
  if (options_.dca_step_budget > 0)
    deadline.with_step_budget(options_.dca_step_budget);
  return deadline;
}

double ServeSession::predict(const std::string& model,
                             const std::string& device) {
  GP_CHECK_MSG(gpu::has_device(device),
               "unknown device '" << device << "'");
  Deadline deadline;
  if (options_.default_deadline_ms > 0)
    deadline = Deadline::after_ms(options_.default_deadline_ms);
  if (options_.dca_step_budget > 0)
    deadline.with_step_budget(options_.dca_step_budget);
  return predict_or_degrade(model, gpu::device(device), deadline,
                            options_.degradation)
      .ipc;
}

Response ServeSession::do_predict(const Request& request) {
  if (request.cmd.positional.size() < 2)
    return error_response("usage: predict <model> <device>");
  const std::string& model = request.cmd.positional[0];
  const std::string& device = request.cmd.positional[1];
  if (!cnn::zoo::has_model(model))
    return error_response("unknown model '" + model + "'");
  if (!gpu::has_device(device))
    return error_response("unknown device '" + device + "'");

  const bool allow_degrade =
      options_.degradation && !request.cmd.has_flag("no-degrade");
  const PredictOutcome outcome = predict_or_degrade(
      model, gpu::device(device), deadline_for(request), allow_degrade);

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "predict")
      .field("model", std::string_view(model))
      .field("device", std::string_view(device))
      .field("ipc", outcome.ipc)
      .field("cached", outcome.cached)
      .field("degraded", outcome.degraded)
      .end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_rank(const Request& request) {
  if (request.cmd.positional.empty())
    return error_response("usage: rank <model>");
  const std::string& model = request.cmd.positional.front();
  if (!cnn::zoo::has_model(model))
    return error_response("unknown model '" + model + "'");

  // One deadline spans the whole ranking: the expensive DCA pass runs
  // once (features are device-independent) so per-device budgets would
  // only multiply the allowance.
  const Deadline deadline = deadline_for(request);
  const bool allow_degrade =
      options_.degradation && !request.cmd.has_flag("no-degrade");
  struct Row {
    const gpu::DeviceSpec* device;
    double ipc;
    double throughput;
  };
  std::vector<Row> rows;
  bool degraded = false;
  for (const gpu::DeviceSpec& device : gpu::device_database()) {
    const PredictOutcome outcome =
        predict_or_degrade(model, device, deadline, allow_degrade);
    degraded = degraded || outcome.degraded;
    rows.push_back({&device, outcome.ipc,
                    outcome.ipc * device.sm_count * device.boost_clock_mhz});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.throughput > b.throughput;
  });

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "rank")
      .field("model", std::string_view(model))
      .field("degraded", degraded);
  json.begin_array("ranking");
  for (const Row& row : rows) {
    json.begin_object()
        .field("device", std::string_view(row.device->name))
        .field("ipc", row.ipc)
        .field("throughput_proxy", row.throughput)
        .end_object();
  }
  json.end_array().end_object();
  return Response{true, json.str(), false};
}

dse::SweepResult ServeSession::sweep(const dse::SweepRequest& request) {
  // One estimator snapshot (and its matching cache identity) for the
  // whole sweep: a hot-reload mid-flight can neither mix two models'
  // predictions nor poison the sweep cache with a stale bundle key.
  std::shared_ptr<const core::PerformanceEstimator> estimator;
  dse::SweepEngine::Options engine;
  {
    std::lock_guard<std::mutex> lock(estimator_mutex_);
    estimator = estimator_;
    engine.bundle_key = bundle_key_;
  }
  engine.cache = sweep_cache_.get();
  engine.pool = &pool_;
  // Route feature acquisition through the session's single-flight path
  // so sweeps share the feature cache and persistent store with every
  // other verb (and concurrent sweeps never duplicate a DCA pass).
  engine.feature_source = [this](const std::string& model,
                                 const Deadline& deadline) {
    return features_for(model, deadline);
  };
  return dse::SweepEngine(*estimator, std::move(engine)).run(request);
}

Response ServeSession::do_dse(const Request& request) {
  if (request.cmd.positional.empty())
    return error_response(
        "usage: dse <model,model,...|all> [--devices=d1,d2,...] "
        "[--max-latency-ms=N] [--max-power-w=N] [--max-cost-usd=N] "
        "[--w-latency=N] [--w-power=N] [--w-cost=N] [--deadline-ms=N] "
        "[--cells] [--no-degrade]");

  dse::SweepRequest sweep_request;
  const std::string& spec = request.cmd.positional.front();
  if (spec == "all") {
    for (const cnn::zoo::ZooEntry& entry : cnn::zoo::all_models())
      sweep_request.models.push_back(entry.name);
  } else {
    for (const std::string& part : split(spec, ',')) {
      const std::string name{trim(part)};
      if (name.empty()) continue;
      if (!cnn::zoo::has_model(name))
        return error_response("unknown model '" + name + "'");
      sweep_request.models.push_back(name);
    }
  }
  if (sweep_request.models.empty())
    return error_response("dse needs at least one model");
  for (const std::string& part :
       split(request.cmd.flag_or("devices", ""), ',')) {
    const std::string name{trim(part)};
    if (name.empty()) continue;
    if (!gpu::has_device(name))
      return error_response("unknown device '" + name + "'");
    sweep_request.devices.push_back(name);
  }

  dse::Constraints& c = sweep_request.constraints;
  const auto flag_double = [&](const char* key, double fallback) {
    const std::string value = request.cmd.flag_or(key, "");
    return value.empty() ? fallback : parse_double(value);
  };
  c.max_latency_ms = flag_double("max-latency-ms", 0.0);
  c.max_power_w = flag_double("max-power-w", 0.0);
  c.max_cost_usd = flag_double("max-cost-usd", 0.0);
  c.w_latency = flag_double("w-latency", 1.0);
  c.w_power = flag_double("w-power", 0.0);
  c.w_cost = flag_double("w-cost", 0.0);

  sweep_request.deadline = deadline_for(request);
  sweep_request.allow_degrade =
      options_.degradation && !request.cmd.has_flag("no-degrade");

  const dse::SweepResult result = sweep(sweep_request);
  metrics_.counter("dse_sweep_cells")
      .fetch_add(static_cast<std::int64_t>(result.cells.size()));

  if (!result.feasible()) {
    if (result.failed_cells == result.cells.size())
      throw ServeError(ErrorCode::kAnalysisFailed,
                       "every sweep cell failed; no device can be ranked");
    throw ServeError(
        ErrorCode::kConstraintInfeasible,
        "no device satisfies the constraints (" +
            std::to_string(result.ranking.size()) +
            " candidates, all filtered); relax a bound or widen "
            "--devices");
  }

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "dse")
      .field("models",
             static_cast<std::uint64_t>(sweep_request.models.size()))
      .field("devices",
             static_cast<std::uint64_t>(sweep_request.devices.empty()
                                            ? gpu::dse_devices().size()
                                            : sweep_request.devices.size()))
      .field("unique_topologies",
             static_cast<std::uint64_t>(result.unique_topologies))
      .field("duplicate_models",
             static_cast<std::uint64_t>(result.duplicate_models))
      .field("sweep_cache_hits",
             static_cast<std::uint64_t>(result.sweep_cache_hits))
      .field("features_computed",
             static_cast<std::uint64_t>(result.features_computed))
      .field("degraded_cells",
             static_cast<std::uint64_t>(result.degraded_cells))
      .field("failed_cells",
             static_cast<std::uint64_t>(result.failed_cells))
      .field("degraded", result.degraded_cells > 0)
      .field("elapsed_ms", result.elapsed_seconds * 1e3)
      .field("pareto", std::string_view(join(result.pareto, ",")));
  json.begin_array("recommendations");
  for (const dse::DeviceSummary& s : result.ranking) {
    json.begin_object()
        .field("device", std::string_view(s.device))
        .field("feasible", s.feasible)
        .field("pareto", s.pareto)
        .field("score", s.score)
        .field("total_latency_ms", s.total_latency_ms)
        .field("worst_latency_ms", s.worst_latency_ms)
        .field("peak_power_w", s.peak_power_w);
    if (s.has_cost) json.field("cost_usd", s.cost_usd);
    json.field("cells_ok", static_cast<std::int64_t>(s.cells_ok))
        .field("cells_degraded",
               static_cast<std::int64_t>(s.cells_degraded))
        .field("cells_failed", static_cast<std::int64_t>(s.cells_failed));
    if (!s.feasible)
      json.field("reason", std::string_view(s.infeasible_reason));
    json.end_object();
  }
  json.end_array();
  if (request.cmd.has_flag("cells")) {
    json.begin_array("cells");
    for (const dse::SweepCell& cell : result.cells) {
      json.begin_object()
          .field("model", std::string_view(cell.model))
          .field("device", std::string_view(cell.device))
          .field("status", dse::cell_status_name(cell.status))
          .field("cached", cell.cached)
          .field("ipc", cell.predicted_ipc)
          .field("latency_ms", cell.latency_ms)
          .field("power_w", cell.power_w);
      if (cell.status == dse::CellStatus::kFailed)
        json.field("error", std::string_view(cell.error));
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_analyze(const Request& request) {
  if (request.cmd.positional.empty())
    return error_response("usage: analyze <model>");
  const std::string& model = request.cmd.positional.front();
  if (!cnn::zoo::has_model(model))
    return error_response("unknown model '" + model + "'");

  const auto report = static_reports_.get_or_compute(model, [&] {
    return std::make_shared<const cnn::ModelReport>(
        analyzer_.analyze(cnn::zoo::build(model)));
  });

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "analyze")
      .field("model", std::string_view(model))
      .field("trainable_params", report->trainable_params)
      .field("total_params", report->total_params)
      .field("neurons", report->neurons)
      .field("macs", report->macs)
      .field("flops", report->flops)
      .field("weighted_layers", report->weighted_layers)
      .end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_reload(const Request& request) {
  if (!registry_)
    return error_response(
        "no registry configured (start the server with --registry)");
  const std::string version = request.cmd.flag_or("version", "");
  std::string installed;
  try {
    installed = reload(version);
  } catch (const std::exception& e) {
    // A missing or corrupt bundle: the previously installed model keeps
    // serving; the client gets a retryable typed code.
    throw ServeError(ErrorCode::kModelUnavailable, e.what());
  }

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "reload")
      .field("version", std::string_view(installed))
      .field("regressor",
             std::string_view(estimator_ptr()->regressor_id()))
      .field("reloads", reload_count())
      .end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_model_info() {
  // Snapshot the live bundle state in one critical section.
  std::string version, source, regressor;
  registry::Manifest manifest;
  {
    std::lock_guard<std::mutex> lock(estimator_mutex_);
    version = live_version_;
    source = model_source_;
    manifest = live_manifest_;
    regressor = estimator_->regressor_id();
  }

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "model_info")
      .field("source", std::string_view(source))
      .field("version", std::string_view(version))
      .field("regressor", std::string_view(regressor))
      .field("reloads", reload_count());
  if (source == "registry") {
    json.field("cv_folds", static_cast<std::uint64_t>(manifest.cv_folds))
        .field("cv_mape", manifest.cv_mape)
        .field("cv_r2", manifest.cv_r2)
        .field("feature_schema",
               std::string_view(
                   registry::hex64(manifest.feature_schema_hash)))
        .field("model_checksum",
               std::string_view(registry::hex64(manifest.model_checksum)))
        .field("seed", manifest.seed);
  }
  json.end_object();
  return Response{true, json.str(), false};
}

namespace {

void write_cache_json(JsonWriter& json, std::string_view name,
                      const CacheStats& stats) {
  json.begin_object(name)
      .field("hits", stats.hits)
      .field("misses", stats.misses)
      .field("evictions", stats.evictions)
      .field("size", static_cast<std::uint64_t>(stats.size))
      .end_object();
}

}  // namespace

void ServeSession::set_stats_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(stats_hook_mutex_);
  stats_hook_ = std::move(hook);
}

void ServeSession::set_ready_probe(ReadyProbe probe) {
  std::lock_guard<std::mutex> lock(stats_hook_mutex_);
  ready_probe_ = std::move(probe);
}

std::string ServeSession::stats_json() {
  {
    std::lock_guard<std::mutex> lock(stats_hook_mutex_);
    if (stats_hook_) stats_hook_();
  }
  // Sync the process-wide DCA fast-path counters into the registry so
  // they appear under "counters" alongside the serve-local ones.
  const auto memo = ptx::InstructionCounter::memo_stats();
  metrics_.counter("dca_memo_hits").store(memo.hits);
  metrics_.counter("dca_memo_misses").store(memo.misses);
  metrics_.counter("dca_parallel_tasks").store(memo.parallel_tasks);
  metrics_.counter("depgraph_csr_bytes")
      .store(ptx::DependencyGraph::total_csr_bytes());
  metrics_.counter("dca_spill_files").store(MappedBuffer::spill_files_total());
  metrics_.counter("dca_spill_bytes").store(MappedBuffer::spill_bytes_total());
  // Durability telemetry (docs/ROBUSTNESS.md): bundles moved aside for
  // on-disk corruption and journal records replayed at store open.
  metrics_.counter("bundles_quarantined")
      .store(registry_ ? registry_->quarantined_total() : 0);
  metrics_.counter("store_records_recovered")
      .store(feature_store_ ? feature_store_->recovered_records() : 0);
  // Worker lifecycle telemetry from the sandbox pool (isolate_dca).
  if (sandbox_pool_) {
    const sandbox::PoolStats ps = sandbox_pool_->stats();
    metrics_.counter("worker_crashes").store(ps.worker_crashes);
    metrics_.counter("worker_kills_timeout").store(ps.worker_kills_timeout);
    metrics_.counter("worker_kills_oom").store(ps.worker_kills_oom);
    metrics_.counter("worker_recycles").store(ps.worker_recycles);
    metrics_.counter("worker_respawns").store(ps.worker_respawns);
  }

  JsonWriter json;
  json.begin_object().field("ok", true).field("endpoint", "stats");
  metrics_.write_json(json);
  json.begin_object("caches");
  write_cache_json(json, "static", static_reports_.stats());
  write_cache_json(json, "features", features_.stats());
  write_cache_json(json, "results", results_.stats());
  json.end_object();
  json.begin_object("dca")
      .field("computes", dca_compute_count())
      .field("store_hits", feature_store_hit_count())
      .field("memo_hits", memo.hits)
      .field("memo_misses", memo.misses)
      .field("parallel_tasks", memo.parallel_tasks)
      .end_object();
  if (sandbox_pool_) {
    const sandbox::PoolStats ps = sandbox_pool_->stats();
    json.begin_object("sandbox")
        .field("workers",
               static_cast<std::int64_t>(options_.dca_workers))
        .field("alive", static_cast<std::int64_t>(
                            sandbox_pool_->alive_workers()))
        .field("requests", ps.requests)
        .field("hard_timeout_ms",
               static_cast<std::int64_t>(options_.dca_hard_timeout_ms))
        .field("worker_rss_mb",
               static_cast<std::uint64_t>(options_.dca_worker_rss_mb))
        .end_object();
  }
  if (sweep_cache_) {
    json.begin_object("dse")
        .field("sweep_cache_hits", sweep_cache_->hits())
        .field("sweep_cache_misses", sweep_cache_->misses())
        .field("sweep_cache_size",
               static_cast<std::uint64_t>(sweep_cache_->size()))
        .field("sweep_cache_recovered",
               static_cast<std::uint64_t>(sweep_cache_->recovered_records()))
        .end_object();
  }
  const BatcherStats batch = batcher_->stats();
  json.begin_object("batch")
      .field("flushes", batch.flushes)
      .field("batches", batch.batches)
      .field("batched_requests", batch.batched_requests)
      .field("max_batch", batch.max_batch)
      .field("shed", batch.shed)
      .end_object();
  json.begin_object("limits")
      .field("default_deadline_ms",
             static_cast<std::int64_t>(options_.default_deadline_ms))
      .field("dca_step_budget", options_.dca_step_budget)
      .field("degradation", options_.degradation)
      .field("max_in_flight",
             static_cast<std::uint64_t>(options_.max_in_flight))
      .field("max_queue", static_cast<std::uint64_t>(options_.max_queue))
      .field("breaker_threshold",
             static_cast<std::int64_t>(options_.breaker_threshold))
      .field("breaker_cooldown_ms",
             static_cast<std::int64_t>(options_.breaker_cooldown_ms))
      .end_object();
  const auto estimator = estimator_ptr();
  json.begin_object("estimator")
      .field("regressor", std::string_view(estimator->regressor_id()))
      .field("trained", estimator->is_trained())
      .field("version", std::string_view(live_version()))
      .field("reloads", reload_count())
      .field("threads", static_cast<std::uint64_t>(pool_.size()))
      .field("batching", options_.batching)
      .end_object();
  json.end_object();
  return json.str();
}

Response ServeSession::do_stats() {
  return Response{true, stats_json(), false};
}

Response ServeSession::do_ping() const {
  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "ping")
      .end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_health() {
  // Liveness: the process answered, the dispatch path works.  Always
  // ok:true — a wedged process simply doesn't respond.
  const auto uptime =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_time_)
          .count();
  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "health")
      .field("status", "ok")
      .field("uptime_ms", static_cast<std::int64_t>(uptime))
      .end_object();
  return Response{true, json.str(), false};
}

ServeSession::ReadyState ServeSession::ready_state() {
  ReadyState state;
  {
    std::lock_guard<std::mutex> lock(estimator_mutex_);
    if (estimator_ == nullptr || !estimator_->is_trained())
      state.reasons.push_back("estimator_not_loaded");
  }
  if (reloading_.load(std::memory_order_acquire))
    state.reasons.push_back("reload_in_flight");
  if (poll_failure_streak_.load(std::memory_order_relaxed) > 0)
    state.reasons.push_back("registry_poll_failing");
  ReadyProbe probe;
  {
    std::lock_guard<std::mutex> lock(stats_hook_mutex_);
    probe = ready_probe_;
  }
  if (probe.draining && probe.draining())
    state.reasons.push_back("draining");
  if (probe.loop_healthy && !probe.loop_healthy())
    state.reasons.push_back("loop_heartbeat_stale");
  state.ready = state.reasons.empty();
  return state;
}

Response ServeSession::do_ready() {
  const ReadyState state = ready_state();
  // ok:true either way — "not ready" is a valid, well-formed answer; a
  // load balancer branches on the ready field, not on ok.
  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "ready")
      .field("ready", state.ready);
  json.begin_array("reasons");
  for (const std::string& reason : state.reasons)
    json.value(std::string_view(reason));
  json.end_array().end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_shutdown() const {
  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "shutdown")
      .end_object();
  return Response{true, json.str(), true};
}

Response ServeSession::handle(const Request& request) {
  static const char* kKnown[] = {"predict", "rank",       "dse",
                                 "analyze", "reload",     "model_info",
                                 "stats",   "ping",       "shutdown",
                                 "health",  "ready"};
  const bool known =
      std::find(std::begin(kKnown), std::end(kKnown), request.verb) !=
      std::end(kKnown);
  EndpointMetrics& endpoint =
      metrics_.endpoint(known ? request.verb : "unknown");
  MetricsRegistry::ScopedRequest scope(metrics_, endpoint);
  if (!known) {
    scope.mark_error();
    return error_response("unknown command '" + request.verb +
                          "' (try: predict, rank, dse, analyze, reload, "
                          "model_info, stats, ping, health, ready, "
                          "shutdown)");
  }

  // Admission control: analysis-heavy verbs are shed once the in-flight
  // gauge (which already counts this request) passes the bound.  Cheap
  // verbs — ping, stats, shutdown — always get through, so the server
  // stays observable and stoppable under overload.
  // A dse sweep is the heaviest verb of all (a whole model-set × device
  // cross product), so it is always admission-controlled.
  const bool heavy = request.verb == "predict" || request.verb == "rank" ||
                     request.verb == "analyze" || request.verb == "dse";
  if (heavy && options_.max_in_flight > 0 &&
      metrics_.in_flight() >
          static_cast<std::int64_t>(options_.max_in_flight)) {
    metrics_.counter("shed_overloaded").fetch_add(1);
    scope.mark_error();
    return error_response(
        ErrorCode::kOverloaded,
        "server at capacity (" +
            std::to_string(options_.max_in_flight) +
            " requests in flight)",
        /*retry_after_ms=*/100);
  }

  try {
    Response response;
    if (request.verb == "predict") response = do_predict(request);
    else if (request.verb == "rank") response = do_rank(request);
    else if (request.verb == "dse") response = do_dse(request);
    else if (request.verb == "analyze") response = do_analyze(request);
    else if (request.verb == "reload") response = do_reload(request);
    else if (request.verb == "model_info") response = do_model_info();
    else if (request.verb == "stats") response = do_stats();
    else if (request.verb == "ping") response = do_ping();
    else if (request.verb == "health") response = do_health();
    else if (request.verb == "ready") response = do_ready();
    else response = do_shutdown();
    if (!response.ok) scope.mark_error();
    return response;
  } catch (const ServeError& e) {
    scope.mark_error();
    return error_response(e.code(), e.what(),
                          e.code() == ErrorCode::kOverloaded ? 100 : 0);
  } catch (const AnalysisTimeout& e) {
    scope.mark_error();
    return error_response(ErrorCode::kAnalysisTimeout, e.what());
  } catch (const sandbox::AnalysisCrashed& e) {
    scope.mark_error();
    return error_response(ErrorCode::kAnalysisCrashed, e.what());
  } catch (const LimitExceeded& e) {
    // A request-derived input blew a resource budget (docs/ROBUSTNESS.md):
    // typed as input_too_large so clients can tell "shrink your input"
    // apart from "fix your syntax".
    metrics_.counter("inputs_rejected").fetch_add(1);
    scope.mark_error();
    return error_response(ErrorCode::kInputTooLarge, e.what());
  } catch (const InputRejected& e) {
    // Malformed bytes rejected by a bounded parser — the caller's input,
    // not a server fault.
    metrics_.counter("inputs_rejected").fetch_add(1);
    scope.mark_error();
    return error_response(ErrorCode::kInvalidRequest, e.what());
  } catch (const CheckError& e) {
    // GP_CHECK failures on request-derived values (bad flag syntax,
    // malformed numbers) are the caller's fault.
    scope.mark_error();
    return error_response(ErrorCode::kInvalidRequest, e.what());
  } catch (const std::exception& e) {
    scope.mark_error();
    return error_response(ErrorCode::kAnalysisFailed, e.what());
  }
}

std::string ServeSession::handle_line(const std::string& line) {
  return handle(parse_request(line)).body;
}

void ServeSession::reset_caches() {
  static_reports_.clear();
  features_.clear();
  results_.clear();
}

std::string ServeSession::summary() const {
  std::ostringstream os;
  os << metrics_.summary();
  {
    std::lock_guard<std::mutex> lock(estimator_mutex_);
    os << "  model: " << model_source_;
    if (!live_version_.empty()) os << " " << live_version_;
    os << " (" << estimator_->regressor_id() << "), " << reloads_.load()
       << " reloads\n";
  }
  const auto line = [&os](const char* name, const CacheStats& stats) {
    const std::uint64_t total = stats.hits + stats.misses;
    os << "  " << name << " cache: " << stats.hits << "/" << total
       << " hits, " << stats.evictions << " evictions\n";
  };
  line("static", static_reports_.stats());
  line("feature", features_.stats());
  line("result", results_.stats());
  os << "  dca: " << dca_computes_.load() << " computed, "
     << store_hits_.load() << " from the persistent store\n";
  const BatcherStats batch = batcher_->stats();
  os << "  batcher: " << batch.batched_requests << " requests in "
     << batch.batches << " batches (max batch " << batch.max_batch
     << ")\n";
  return os.str();
}

}  // namespace gpuperf::serve
