#include "serve/session.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "cnn/zoo.hpp"
#include "common/check.hpp"
#include "common/strings.hpp"
#include "core/dataset_builder.hpp"
#include "gpu/device_db.hpp"

namespace gpuperf::serve {

namespace {

core::PerformanceEstimator make_estimator(const ServeOptions& options) {
  if (!options.tree_path.empty())
    return core::PerformanceEstimator::load(options.tree_path);
  core::DatasetOptions dataset;
  dataset.models = options.train_models;
  dataset.devices = options.train_devices;
  core::PerformanceEstimator estimator(options.regressor_id, options.seed);
  estimator.train(core::DatasetBuilder(dataset).build());
  return estimator;
}

std::string result_key(const std::string& model,
                       const std::string& device) {
  return model + '\x1f' + device;
}

}  // namespace

ServeSession::ServeSession(ServeOptions options)
    : options_(std::move(options)),
      estimator_(make_estimator(options_)),
      static_reports_(options_.cache_capacity, options_.cache_shards),
      features_(options_.cache_capacity, options_.cache_shards),
      results_(options_.cache_capacity, options_.cache_shards),
      pool_(options_.n_threads) {
  batcher_ = std::make_unique<PredictBatcher>(
      pool_, [this](const std::string& model,
                    const std::vector<const gpu::DeviceSpec*>& devices) {
        return predict_group(model, devices);
      });
  // One-shot estimator callers share the service's DCA cache too.
  estimator_.set_feature_provider(
      [this](const std::string& model) { return features_for(model); });
}

ServeSession::FeaturePtr ServeSession::features_for(
    const std::string& model) {
  GP_CHECK_MSG(cnn::zoo::has_model(model),
               "unknown model '" << model << "'");
  return features_.get_or_compute(model, [&] {
    return std::make_shared<const core::ModelFeatures>(
        extractor_.compute(cnn::zoo::build(model)));
  });
}

std::vector<double> ServeSession::predict_group(
    const std::string& model,
    const std::vector<const gpu::DeviceSpec*>& devices) {
  const FeaturePtr features = features_for(model);
  std::vector<double> out;
  out.reserve(devices.size());
  for (const gpu::DeviceSpec* device : devices)
    out.push_back(estimator_.predict(*features, *device));
  return out;
}

ServeSession::PredictOutcome ServeSession::predict_ipc(
    const std::string& model, const gpu::DeviceSpec& device) {
  const std::string key = result_key(model, device.name);
  if (const auto cached = results_.get(key)) return {*cached, true};
  double ipc = 0.0;
  if (options_.batching) {
    ipc = batcher_->submit(model, device).get();
  } else {
    ipc = predict_group(model, {&device}).front();
  }
  results_.put(key, std::make_shared<const double>(ipc));
  return {ipc, false};
}

double ServeSession::predict(const std::string& model,
                             const std::string& device) {
  GP_CHECK_MSG(gpu::has_device(device),
               "unknown device '" << device << "'");
  return predict_ipc(model, gpu::device(device)).ipc;
}

Response ServeSession::do_predict(const Request& request) {
  if (request.cmd.positional.size() < 2)
    return error_response("usage: predict <model> <device>");
  const std::string& model = request.cmd.positional[0];
  const std::string& device = request.cmd.positional[1];
  if (!cnn::zoo::has_model(model))
    return error_response("unknown model '" + model + "'");
  if (!gpu::has_device(device))
    return error_response("unknown device '" + device + "'");

  const PredictOutcome outcome = predict_ipc(model, gpu::device(device));

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "predict")
      .field("model", std::string_view(model))
      .field("device", std::string_view(device))
      .field("ipc", outcome.ipc)
      .field("cached", outcome.cached)
      .end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_rank(const Request& request) {
  if (request.cmd.positional.empty())
    return error_response("usage: rank <model>");
  const std::string& model = request.cmd.positional.front();
  if (!cnn::zoo::has_model(model))
    return error_response("unknown model '" + model + "'");

  struct Row {
    const gpu::DeviceSpec* device;
    double ipc;
    double throughput;
  };
  std::vector<Row> rows;
  for (const gpu::DeviceSpec& device : gpu::device_database()) {
    const double ipc = predict_ipc(model, device).ipc;
    rows.push_back(
        {&device, ipc, ipc * device.sm_count * device.boost_clock_mhz});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.throughput > b.throughput;
  });

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "rank")
      .field("model", std::string_view(model));
  json.begin_array("ranking");
  for (const Row& row : rows) {
    json.begin_object()
        .field("device", std::string_view(row.device->name))
        .field("ipc", row.ipc)
        .field("throughput_proxy", row.throughput)
        .end_object();
  }
  json.end_array().end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_analyze(const Request& request) {
  if (request.cmd.positional.empty())
    return error_response("usage: analyze <model>");
  const std::string& model = request.cmd.positional.front();
  if (!cnn::zoo::has_model(model))
    return error_response("unknown model '" + model + "'");

  const auto report = static_reports_.get_or_compute(model, [&] {
    return std::make_shared<const cnn::ModelReport>(
        analyzer_.analyze(cnn::zoo::build(model)));
  });

  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "analyze")
      .field("model", std::string_view(model))
      .field("trainable_params", report->trainable_params)
      .field("total_params", report->total_params)
      .field("neurons", report->neurons)
      .field("macs", report->macs)
      .field("flops", report->flops)
      .field("weighted_layers", report->weighted_layers)
      .end_object();
  return Response{true, json.str(), false};
}

namespace {

void write_cache_json(JsonWriter& json, std::string_view name,
                      const CacheStats& stats) {
  json.begin_object(name)
      .field("hits", stats.hits)
      .field("misses", stats.misses)
      .field("evictions", stats.evictions)
      .field("size", static_cast<std::uint64_t>(stats.size))
      .end_object();
}

}  // namespace

std::string ServeSession::stats_json() {
  JsonWriter json;
  json.begin_object().field("ok", true).field("endpoint", "stats");
  metrics_.write_json(json);
  json.begin_object("caches");
  write_cache_json(json, "static", static_reports_.stats());
  write_cache_json(json, "features", features_.stats());
  write_cache_json(json, "results", results_.stats());
  json.end_object();
  const BatcherStats batch = batcher_->stats();
  json.begin_object("batch")
      .field("flushes", batch.flushes)
      .field("batches", batch.batches)
      .field("batched_requests", batch.batched_requests)
      .field("max_batch", batch.max_batch)
      .end_object();
  json.begin_object("estimator")
      .field("regressor", std::string_view(estimator_.regressor_id()))
      .field("trained", estimator_.is_trained())
      .field("threads", static_cast<std::uint64_t>(pool_.size()))
      .field("batching", options_.batching)
      .end_object();
  json.end_object();
  return json.str();
}

Response ServeSession::do_stats() {
  return Response{true, stats_json(), false};
}

Response ServeSession::do_ping() const {
  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "ping")
      .end_object();
  return Response{true, json.str(), false};
}

Response ServeSession::do_shutdown() const {
  JsonWriter json;
  json.begin_object()
      .field("ok", true)
      .field("endpoint", "shutdown")
      .end_object();
  return Response{true, json.str(), true};
}

Response ServeSession::handle(const Request& request) {
  static const char* kKnown[] = {"predict", "rank",    "analyze",
                                 "stats",   "ping",    "shutdown"};
  const bool known =
      std::find(std::begin(kKnown), std::end(kKnown), request.verb) !=
      std::end(kKnown);
  EndpointMetrics& endpoint =
      metrics_.endpoint(known ? request.verb : "unknown");
  MetricsRegistry::ScopedRequest scope(metrics_, endpoint);
  if (!known) {
    scope.mark_error();
    return error_response("unknown command '" + request.verb +
                          "' (try: predict, rank, analyze, stats, ping, "
                          "shutdown)");
  }
  try {
    Response response;
    if (request.verb == "predict") response = do_predict(request);
    else if (request.verb == "rank") response = do_rank(request);
    else if (request.verb == "analyze") response = do_analyze(request);
    else if (request.verb == "stats") response = do_stats();
    else if (request.verb == "ping") response = do_ping();
    else response = do_shutdown();
    if (!response.ok) scope.mark_error();
    return response;
  } catch (const std::exception& e) {
    scope.mark_error();
    return error_response(e.what());
  }
}

std::string ServeSession::handle_line(const std::string& line) {
  return handle(parse_request(line)).body;
}

void ServeSession::reset_caches() {
  static_reports_.clear();
  features_.clear();
  results_.clear();
}

std::string ServeSession::summary() const {
  std::ostringstream os;
  os << metrics_.summary();
  const auto line = [&os](const char* name, const CacheStats& stats) {
    const std::uint64_t total = stats.hits + stats.misses;
    os << "  " << name << " cache: " << stats.hits << "/" << total
       << " hits, " << stats.evictions << " evictions\n";
  };
  line("static", static_reports_.stats());
  line("feature", features_.stats());
  line("result", results_.stats());
  const BatcherStats batch = batcher_->stats();
  os << "  batcher: " << batch.batched_requests << " requests in "
     << batch.batches << " batches (max batch " << batch.max_batch
     << ")\n";
  return os.str();
}

}  // namespace gpuperf::serve
