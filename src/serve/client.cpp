#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace gpuperf::serve {

TcpClient::TcpClient(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GP_CHECK_MSG(fd_ >= 0, "socket() failed: " << std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  GP_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
               "bad host address '" << host << "' (use an IPv4 literal)");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    GP_CHECK_MSG(false, "connect to " << host << ":" << port
                                      << " failed: " << std::strerror(err));
  }
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string TcpClient::request(const std::string& line) {
  const std::string out = line + "\n";
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      GP_CHECK_MSG(false, "send failed: " << std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }

  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r')
        response.pop_back();
      return response;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    GP_CHECK_MSG(n > 0, "server closed the connection mid-response");
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace gpuperf::serve
