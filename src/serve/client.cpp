#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "serve/binary_protocol.hpp"

namespace gpuperf::serve {

namespace {

void set_socket_timeout(int fd, int option, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

bool is_timeout_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT;
}

}  // namespace

TcpClient::TcpClient(const std::string& host, int port, Options options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GP_CHECK_MSG(fd_ >= 0, "socket() failed: " << std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    GP_CHECK_MSG(false,
                 "bad host address '" << host << "' (use an IPv4 literal)");
  }

  const std::string where = host + ":" + std::to_string(port);
  const auto fail = [this, &where](const std::string& what,
                                   bool timed_out) {
    ::close(fd_);
    fd_ = -1;
    throw ClientError("connect to " + where + " " + what, timed_out);
  };

  // Non-blocking connect + poll: an unreachable host fails after
  // connect_timeout_ms instead of the kernel's minutes-long default.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS)
      fail(std::string("failed: ") + std::strerror(errno), false);
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    const int timeout =
        options.connect_timeout_ms > 0 ? options.connect_timeout_ms : -1;
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0)
      fail("timed out after " + std::to_string(options.connect_timeout_ms) +
               " ms",
           true);
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc < 0 ||
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0)
      fail(std::string("failed: ") + std::strerror(err != 0 ? err : errno),
           false);
  }
  ::fcntl(fd_, F_SETFL, flags);  // back to blocking for request()

  set_socket_timeout(fd_, SO_RCVTIMEO, options.io_timeout_ms);
  set_socket_timeout(fd_, SO_SNDTIMEO, options.io_timeout_ms);
  max_response_bytes_ = options.max_response_bytes;
  binary_ = options.binary;
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpClient::send_all(const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const int err = errno;
      if (n < 0 && is_timeout_errno(err))
        throw ClientError("send timed out", true);
      throw ClientError(std::string("send failed: ") + std::strerror(err),
                        false);
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string TcpClient::request(const std::string& line) {
  return binary_ ? request_binary(line) : request_line(line);
}

std::string TcpClient::request_line(const std::string& line) {
  send_all(line + "\n");

  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r')
        response.pop_back();
      return response;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && is_timeout_errno(errno))
      throw ClientError("response timed out", true);
    if (n <= 0)
      throw ClientError("server closed the connection mid-response",
                        false);
    buffer_.append(chunk, static_cast<std::size_t>(n));
    if (buffer_.size() > max_response_bytes_)
      throw ClientError(
          "response exceeds " + std::to_string(max_response_bytes_) +
              " bytes without a newline",
          false);
  }
}

std::string TcpClient::request_binary(const std::string& line) {
  const std::string trimmed(trim(line));
  const std::size_t sp = trimmed.find_first_of(" \t");
  const std::string verb_word = trimmed.substr(0, sp);
  binary::Verb verb;
  if (!binary::verb_from_name(verb_word, verb))
    throw ClientError(
        "verb '" + verb_word + "' has no binary wire id", false);
  const std::string args =
      sp == std::string::npos
          ? std::string()
          : std::string(trim(trimmed.substr(sp + 1)));
  send_all(binary::encode_request(verb, args));

  // The client's frame budget is the response bound, not the (smaller)
  // server-side request budget: stats and dse bodies can be large.
  InputLimits limits = InputLimits::defaults();
  limits.max_frame_payload_bytes = max_response_bytes_;
  char chunk[4096];
  for (;;) {
    const binary::DecodeResult r = binary::decode_frame(buffer_, limits);
    if (r.status == binary::DecodeStatus::kFrame) {
      std::string body(r.frame.payload);
      buffer_.erase(0, r.consumed);
      return body;
    }
    if (r.status != binary::DecodeStatus::kNeedMore)
      throw ClientError("malformed response frame: " + r.error, false);
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && is_timeout_errno(errno))
      throw ClientError("response timed out", true);
    if (n <= 0)
      throw ClientError("server closed the connection mid-response",
                        false);
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string request_with_retry(const std::string& host, int port,
                               const std::string& line, RetryPolicy policy,
                               TcpClient::Options options) {
  GP_CHECK_MSG(policy.attempts > 0, "retry policy needs >= 1 attempt");
  std::mt19937_64 rng(policy.seed != 0 ? policy.seed
                                       : 0x9e3779b97f4a7c15ULL);
  std::string last_error;
  int backoff_ms = policy.base_backoff_ms;
  for (int attempt = 0; attempt < policy.attempts; ++attempt) {
    if (attempt > 0) {
      std::uniform_int_distribution<int> jitter(0, std::max(1, backoff_ms));
      std::this_thread::sleep_for(std::chrono::milliseconds(jitter(rng)));
      backoff_ms = std::min(backoff_ms * 2, policy.max_backoff_ms);
    }
    try {
      TcpClient client(host, port, options);
      const std::string response = client.request(line);
      // Shedding is the one server answer worth retrying: the server is
      // up and will likely have capacity after the backoff.
      if (response.find("\"code\":\"overloaded\"") != std::string::npos) {
        last_error = "server overloaded";
        continue;
      }
      return response;
    } catch (const ClientError& e) {
      last_error = e.what();
    }
  }
  throw ClientError("request to " + host + ":" + std::to_string(port) +
                        " failed after " +
                        std::to_string(policy.attempts) +
                        " attempts; last error: " + last_error,
                    false);
}

}  // namespace gpuperf::serve
