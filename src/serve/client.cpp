#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_set>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "net/io.hpp"
#include "serve/binary_protocol.hpp"

namespace gpuperf::serve {

namespace {

void set_socket_timeout(int fd, int option, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

bool is_timeout_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT;
}

}  // namespace

TcpClient::TcpClient(const std::string& host, int port, Options options) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GP_CHECK_MSG(fd_ >= 0, "socket() failed: " << std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    GP_CHECK_MSG(false,
                 "bad host address '" << host << "' (use an IPv4 literal)");
  }

  const std::string where = host + ":" + std::to_string(port);
  const auto fail = [this, &where](const std::string& what,
                                   bool timed_out) {
    ::close(fd_);
    fd_ = -1;
    throw ClientError("connect to " + where + " " + what, timed_out);
  };

  // Non-blocking connect + poll: an unreachable host fails after
  // connect_timeout_ms instead of the kernel's minutes-long default.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  if (net::io::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    if (errno != EINPROGRESS)
      fail(std::string("failed: ") + std::strerror(errno), false);
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    const int timeout =
        options.connect_timeout_ms > 0 ? options.connect_timeout_ms : -1;
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0)
      fail("timed out after " + std::to_string(options.connect_timeout_ms) +
               " ms",
           true);
    int err = 0;
    socklen_t len = sizeof(err);
    if (rc < 0 ||
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0)
      fail(std::string("failed: ") + std::strerror(err != 0 ? err : errno),
           false);
  }
  ::fcntl(fd_, F_SETFL, flags);  // back to blocking for request()

  set_socket_timeout(fd_, SO_RCVTIMEO, options.io_timeout_ms);
  set_socket_timeout(fd_, SO_SNDTIMEO, options.io_timeout_ms);
  max_response_bytes_ = options.max_response_bytes;
  binary_ = options.binary;
}

TcpClient::~TcpClient() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpClient::send_all(const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        net::io::write(fd_, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      const int err = errno;
      if (n < 0 && is_timeout_errno(err))
        throw ClientError("send timed out", true);
      throw ClientError(std::string("send failed: ") + std::strerror(err),
                        false);
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string TcpClient::request(const std::string& line) {
  return binary_ ? request_binary(line) : request_line(line);
}

std::string TcpClient::request_line(const std::string& line) {
  send_all(line + "\n");

  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!response.empty() && response.back() == '\r')
        response.pop_back();
      return response;
    }
    const ssize_t n = net::io::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && is_timeout_errno(errno))
      throw ClientError("response timed out", true);
    if (n <= 0)
      throw ClientError("server closed the connection mid-response",
                        false);
    buffer_.append(chunk, static_cast<std::size_t>(n));
    if (buffer_.size() > max_response_bytes_)
      throw ClientError(
          "response exceeds " + std::to_string(max_response_bytes_) +
              " bytes without a newline",
          false);
  }
}

std::string TcpClient::request_binary(const std::string& line) {
  const std::string trimmed(trim(line));
  const std::size_t sp = trimmed.find_first_of(" \t");
  const std::string verb_word = trimmed.substr(0, sp);
  binary::Verb verb;
  if (!binary::verb_from_name(verb_word, verb))
    throw ClientError(
        "verb '" + verb_word + "' has no binary wire id", false);
  const std::string args =
      sp == std::string::npos
          ? std::string()
          : std::string(trim(trimmed.substr(sp + 1)));
  send_all(binary::encode_request(verb, args));

  // The client's frame budget is the response bound, not the (smaller)
  // server-side request budget: stats and dse bodies can be large.
  InputLimits limits = InputLimits::defaults();
  limits.max_frame_payload_bytes = max_response_bytes_;
  char chunk[4096];
  for (;;) {
    const binary::DecodeResult r = binary::decode_frame(buffer_, limits);
    if (r.status == binary::DecodeStatus::kFrame) {
      std::string body(r.frame.payload);
      buffer_.erase(0, r.consumed);
      return body;
    }
    if (r.status != binary::DecodeStatus::kNeedMore)
      throw ClientError("malformed response frame: " + r.error, false);
    const ssize_t n = net::io::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && is_timeout_errno(errno))
      throw ClientError("response timed out", true);
    if (n <= 0)
      throw ClientError("server closed the connection mid-response",
                        false);
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string request_with_retry(const std::string& host, int port,
                               const std::string& line, RetryPolicy policy,
                               TcpClient::Options options) {
  GP_CHECK_MSG(policy.attempts > 0, "retry policy needs >= 1 attempt");
  std::mt19937_64 rng(policy.seed != 0 ? policy.seed
                                       : 0x9e3779b97f4a7c15ULL);
  std::string last_error;
  int backoff_ms = policy.base_backoff_ms;
  for (int attempt = 0; attempt < policy.attempts; ++attempt) {
    if (attempt > 0) {
      std::uniform_int_distribution<int> jitter(0, std::max(1, backoff_ms));
      std::this_thread::sleep_for(std::chrono::milliseconds(jitter(rng)));
      backoff_ms = std::min(backoff_ms * 2, policy.max_backoff_ms);
    }
    try {
      TcpClient client(host, port, options);
      const std::string response = client.request(line);
      // Shedding is the one server answer worth retrying: the server is
      // up and will likely have capacity after the backoff.
      if (response.find("\"code\":\"overloaded\"") != std::string::npos) {
        last_error = "server overloaded";
        continue;
      }
      return response;
    } catch (const ClientError& e) {
      last_error = e.what();
    }
  }
  throw ClientError("request to " + host + ":" + std::to_string(port) +
                        " failed after " +
                        std::to_string(policy.attempts) +
                        " attempts; last error: " + last_error,
                    false);
}

std::vector<Endpoint> parse_endpoints(const std::string& spec) {
  std::vector<Endpoint> out;
  for (const std::string& part : split(spec, ',')) {
    const std::string entry(trim(part));
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    GP_CHECK_MSG(colon != std::string::npos && colon > 0,
                 "endpoint '" << entry << "' is not host:port");
    long long port = 0;
    bool numeric = true;
    try {
      port = parse_int(entry.substr(colon + 1));
    } catch (const CheckError&) {
      numeric = false;
    }
    GP_CHECK_MSG(numeric && port > 0 && port <= 65535,
                 "endpoint '" << entry << "' has a bad port");
    out.push_back(Endpoint{entry.substr(0, colon), static_cast<int>(port)});
  }
  GP_CHECK_MSG(!out.empty(), "empty endpoint list");
  return out;
}

namespace {

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Verbs safe to issue twice: read-only and cheap enough that a
/// duplicated request is waste, not harm.  reload/shutdown mutate
/// server state; dse doubles minutes of real work.
bool hedgeable_verb(const std::string& line) {
  static const std::unordered_set<std::string> kIdempotent = {
      "predict", "rank",  "analyze", "model_info",
      "stats",   "ping",  "health",  "ready"};
  const std::string trimmed(trim(line));
  const std::size_t sp = trimmed.find_first_of(" \t");
  return kIdempotent.count(trimmed.substr(0, sp)) > 0;
}

}  // namespace

/// Shared with hedge threads via shared_ptr: a losing hedge may still
/// be blocked in its socket timeout when request() returns, so the
/// result slots and health table must outlive the call (and even the
/// client).  Everything here is guarded by `mutex`.
struct FailoverClient::State {
  struct Ep {
    std::uint64_t attempts = 0;
    std::uint64_t failures = 0;
    int consecutive_failures = 0;
    std::int64_t open_until_ms = 0;  // 0 = breaker closed
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Ep> eps;
};

FailoverClient::FailoverClient(std::vector<Endpoint> endpoints,
                               Options options)
    : endpoints_(std::move(endpoints)),
      options_(options),
      state_(std::make_shared<State>()) {
  GP_CHECK_MSG(!endpoints_.empty(), "FailoverClient needs >= 1 endpoint");
  GP_CHECK_MSG(options_.retry.attempts > 0,
               "retry policy needs >= 1 attempt");
  state_->eps.resize(endpoints_.size());
}

FailoverClient::EndpointHealth FailoverClient::health(
    std::size_t index) const {
  GP_CHECK(index < endpoints_.size());
  std::lock_guard<std::mutex> lock(state_->mutex);
  const State::Ep& ep = state_->eps[index];
  EndpointHealth out;
  out.attempts = ep.attempts;
  out.failures = ep.failures;
  out.consecutive_failures = ep.consecutive_failures;
  out.open = ep.open_until_ms != 0 && steady_ms() < ep.open_until_ms;
  return out;
}

std::size_t FailoverClient::pick_endpoint(int attempt) const {
  const std::size_t n = endpoints_.size();
  const std::int64_t now = steady_ms();
  std::lock_guard<std::mutex> lock(state_->mutex);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = (static_cast<std::size_t>(attempt) + k) % n;
    const State::Ep& ep = state_->eps[idx];
    // An expired cooldown admits the endpoint again as a probe; the
    // breaker re-opens from record() if the probe fails.
    if (ep.open_until_ms == 0 || now >= ep.open_until_ms) return idx;
  }
  return static_cast<std::size_t>(attempt) % n;
}

void FailoverClient::record(std::size_t index, bool success) {
  std::lock_guard<std::mutex> lock(state_->mutex);
  State::Ep& ep = state_->eps[index];
  ep.attempts += 1;
  if (success) {
    ep.consecutive_failures = 0;
    ep.open_until_ms = 0;
  } else {
    ep.failures += 1;
    ep.consecutive_failures += 1;
    if (options_.endpoint_failure_threshold > 0 &&
        ep.consecutive_failures >= options_.endpoint_failure_threshold)
      ep.open_until_ms = steady_ms() + options_.endpoint_cooldown_ms;
  }
}

std::string FailoverClient::one_request(std::size_t index,
                                        const std::string& line) {
  try {
    TcpClient client(endpoints_[index].host, endpoints_[index].port,
                     options_.client);
    std::string response = client.request(line);
    // Any response — even "overloaded" shedding — means the endpoint
    // is alive; only connect/I-O failures count against its breaker.
    record(index, true);
    return response;
  } catch (const ClientError&) {
    record(index, false);
    throw;
  }
}

std::string FailoverClient::hedged_request(std::size_t primary,
                                           const std::string& line) {
  struct Race {
    std::mutex m;
    std::condition_variable cv;
    int launched = 0;
    int done = 0;
    bool have_winner = false;
    std::string winner;
    std::string first_error;
  };
  auto race = std::make_shared<Race>();
  // Legs are detached — a losing leg may still be blocked in its socket
  // timeout after request() returns — so they own shared_ptr copies of
  // the race and the health table and value copies of everything else.
  std::shared_ptr<State> state = state_;
  const Options opts = options_;
  const auto run_leg = [race, state, opts](Endpoint ep, std::size_t index,
                                           std::string request_line) {
    std::string response;
    std::string error;
    bool ok = false;
    try {
      TcpClient client(ep.host, ep.port, opts.client);
      response = client.request(request_line);
      ok = true;
    } catch (const ClientError& e) {
      error = e.what();
    }
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      State::Ep& health = state->eps[index];
      health.attempts += 1;
      if (ok) {
        health.consecutive_failures = 0;
        health.open_until_ms = 0;
      } else {
        health.failures += 1;
        health.consecutive_failures += 1;
        if (opts.endpoint_failure_threshold > 0 &&
            health.consecutive_failures >= opts.endpoint_failure_threshold)
          health.open_until_ms = steady_ms() + opts.endpoint_cooldown_ms;
      }
    }
    {
      std::lock_guard<std::mutex> lock(race->m);
      race->done += 1;
      if (ok && !race->have_winner) {
        race->have_winner = true;
        race->winner = std::move(response);
      } else if (!ok && race->first_error.empty()) {
        race->first_error = error;
      }
    }
    race->cv.notify_all();
  };

  const auto launch = [&](std::size_t index) {
    {
      std::lock_guard<std::mutex> lock(race->m);
      race->launched += 1;
    }
    std::thread(run_leg, endpoints_[index], index, line).detach();
  };

  launch(primary);
  std::unique_lock<std::mutex> lock(race->m);
  // Wakes early when the primary answers or fails outright — a failed
  // primary fails over immediately instead of sleeping out the delay.
  race->cv.wait_for(lock, std::chrono::milliseconds(options_.hedge_delay_ms),
                    [&] { return race->have_winner || race->done > 0; });
  if (!race->have_winner) {
    // Hedge on the next healthy endpoint that is not the primary.
    std::size_t backup = (primary + 1) % endpoints_.size();
    {
      const std::int64_t now = steady_ms();
      std::lock_guard<std::mutex> state_lock(state_->mutex);
      for (std::size_t k = 1; k < endpoints_.size(); ++k) {
        const std::size_t idx = (primary + k) % endpoints_.size();
        const State::Ep& ep = state_->eps[idx];
        if (ep.open_until_ms == 0 || now >= ep.open_until_ms) {
          backup = idx;
          break;
        }
      }
    }
    lock.unlock();
    launch(backup);
    lock.lock();
  }
  race->cv.wait(lock,
                [&] { return race->have_winner || race->done == race->launched; });
  if (race->have_winner) return std::move(race->winner);
  throw ClientError("hedged request failed on " +
                        std::to_string(race->launched) +
                        " endpoints; first error: " + race->first_error,
                    false);
}

std::string FailoverClient::request(const std::string& line) {
  const bool hedge = options_.hedge && endpoints_.size() > 1 &&
                     hedgeable_verb(line);
  std::mt19937_64 rng(options_.retry.seed != 0 ? options_.retry.seed
                                               : 0x9e3779b97f4a7c15ULL);
  std::string last_error = "no endpoint tried";
  int backoff_ms = options_.retry.base_backoff_ms;
  // The attempt budget is shared across endpoints: attempt k tries the
  // k-th choice the endpoint picker yields, so a two-endpoint client
  // with the default 4 attempts alternates twice, not 4x2 times.
  for (int attempt = 0; attempt < options_.retry.attempts; ++attempt) {
    if (attempt > 0) {
      std::uniform_int_distribution<int> jitter(0, std::max(1, backoff_ms));
      std::this_thread::sleep_for(std::chrono::milliseconds(jitter(rng)));
      backoff_ms = std::min(backoff_ms * 2, options_.retry.max_backoff_ms);
    }
    const std::size_t primary = pick_endpoint(attempt);
    try {
      std::string response =
          hedge ? hedged_request(primary, line) : one_request(primary, line);
      if (response.find("\"code\":\"overloaded\"") == std::string::npos)
        return response;
      last_error = "server overloaded";
    } catch (const ClientError& e) {
      last_error = e.what();
    }
  }
  throw ClientError(
      "request failed after " + std::to_string(options_.retry.attempts) +
          " attempts across " + std::to_string(endpoints_.size()) +
          " endpoints; last error: " + last_error,
      false);
}

}  // namespace gpuperf::serve
