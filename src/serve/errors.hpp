// Typed error taxonomy of the serving layer (docs/ROBUSTNESS.md): every
// failure a client can observe maps to exactly one machine-readable
// code, emitted as the "code" field of {"ok":false,...} responses.
// Clients branch on the code, never on the human-readable message.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

namespace gpuperf::serve {

enum class ErrorCode {
  /// The request itself is malformed: unknown verb, missing arguments,
  /// unknown model/device names, unparsable flag values.  Retrying the
  /// same request can never succeed.
  kInvalidRequest,
  /// The analysis deadline or step budget expired before DCA finished.
  /// Retrying with a larger --deadline-ms may succeed; so may the same
  /// request later (the single-flight entry was erased for retry).
  kAnalysisTimeout,
  /// DCA or prediction failed for a reason other than time (unsupported
  /// kernel fragment, internal invariant, injected fault).
  kAnalysisFailed,
  /// A sandboxed analysis worker died instead of answering: killed by a
  /// signal, hard-killed past --dca-hard-timeout-ms, or it corrupted
  /// the worker pipe protocol.  The server itself is fine — the worker
  /// was the crash domain.  Retrying may succeed on a fresh worker;
  /// repeated crashes for one module open its circuit breaker.
  kAnalysisCrashed,
  /// Admission control shed the request (in-flight or queue bound hit).
  /// Retrying after a backoff is the intended client behavior.
  kOverloaded,
  /// No servable model: registry reload failed, bundle corrupt/missing.
  kModelUnavailable,
  /// Degradation itself failed after the primary path already had —
  /// surfaced only when the static-features fallback throws too.
  kDegraded,
  /// A `dse` sweep completed but no device satisfied the request's
  /// constraints (docs/DSE.md).  Retrying the same constraints can
  /// never succeed; relax a bound or widen the device list.
  kConstraintInfeasible,
  /// The request (or an input embedded in it) blew an input limit:
  /// oversized request line, or a payload past its InputLimits budget
  /// (docs/ROBUSTNESS.md "Input limits").  Retrying the same bytes can
  /// never succeed; send a smaller input.
  kInputTooLarge,
};

std::string_view error_code_name(ErrorCode code);

/// A serve-layer failure that already knows its wire code.  handle()
/// maps it straight through; everything else is classified by type
/// (AnalysisTimeout → analysis_timeout, CheckError → invalid_request,
/// other exceptions → analysis_failed).
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// {"ok":false,"code":"...","error":"..."}; `retry_after_ms` > 0 adds a
/// client backoff hint (used by overloaded responses).
Response error_response(ErrorCode code, const std::string& message,
                        std::int64_t retry_after_ms = 0);

}  // namespace gpuperf::serve
