// Length-prefixed binary framing for the gpuperf serve protocol
// (docs/SERVER.md "Binary protocol").  One frame per request and per
// response, same 12-byte header both ways:
//
//   offset  size  field
//        0     1  magic     0xB7 (never a printable ASCII byte, so the
//                           server sniffs the protocol from the first
//                           byte of a connection)
//        1     1  version   1
//        2     1  verb      request: Verb enum; response: echoes the
//                           request's verb
//        3     1  flags     bit 0 (responses): error frame
//        4     4  length    payload bytes, u32 little-endian
//        8     4  crc32     CRC-32 (IEEE, common/crc32.hpp) of the
//                           payload, u32 little-endian
//       12   len  payload   request: the argument string (the request
//                           line minus its verb word); response: the
//                           single-line JSON body, identical to the
//                           line protocol's
//
// Decoding is zero-copy and incremental: decode_frame() validates the
// header in place against the InputLimits frame budget (length is
// checked before any payload accumulates), returns kNeedMore on a
// partial frame, and yields a FrameView whose payload aliases the
// input bytes.  Malformed frames produce typed statuses, never
// exceptions — the connection is then closed after one typed error
// response, exactly like an oversized request line.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/limits.hpp"
#include "serve/protocol.hpp"

namespace gpuperf::serve::binary {

inline constexpr unsigned char kMagic = 0xB7;
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
/// Response flag bit: the payload is an {"ok":false,...} error body.
inline constexpr std::uint8_t kFlagError = 0x01;

/// Wire verb ids.  Values are frozen protocol surface: append only.
enum class Verb : std::uint8_t {
  kPredict = 1,
  kRank = 2,
  kDse = 3,
  kAnalyze = 4,
  kReload = 5,
  kModelInfo = 6,
  kStats = 7,
  kPing = 8,
  kShutdown = 9,
  kHealth = 10,
  kReady = 11,
};

/// The line-protocol verb word for a wire id ("" for an unknown id).
std::string_view verb_name(Verb verb);

/// The wire id for a verb word; returns false for unknown words.
bool verb_from_name(std::string_view name, Verb& out);

/// A decoded frame; `payload` aliases the input buffer.
struct FrameView {
  std::uint8_t version = 0;
  Verb verb = Verb::kPing;
  std::uint8_t flags = 0;
  std::string_view payload;
};

enum class DecodeStatus {
  kNeedMore,    ///< the buffer holds a valid prefix of a frame
  kFrame,       ///< one complete, CRC-checked frame decoded
  kBadMagic,    ///< first byte is not kMagic
  kBadVersion,  ///< unsupported version byte
  kBadVerb,     ///< verb byte outside the Verb enum
  kBadCrc,      ///< payload does not match the header CRC
  kTooLarge,    ///< header length exceeds max_frame_payload_bytes
};

std::string_view decode_status_name(DecodeStatus status);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kNeedMore;
  FrameView frame;        // valid when status == kFrame
  std::size_t consumed = 0;  // bytes to drop from the input buffer
  std::string error;      // human-readable detail for non-kFrame statuses
};

/// Try to decode one frame from the head of `bytes`.  Never throws;
/// every malformed input maps to a typed status.  On kFrame, `consumed`
/// covers header + payload and `frame.payload` aliases `bytes` — use it
/// before mutating the buffer.  The header's length field is checked
/// against `limits.max_frame_payload_bytes` as soon as the header is
/// complete, so an adversarial length can never grow the buffer.
DecodeResult decode_frame(std::string_view bytes,
                          const InputLimits& limits =
                              InputLimits::defaults());

/// Serialize a request frame (verb + argument string).
std::string encode_request(Verb verb, std::string_view args);

/// Serialize a response frame echoing the request's verb; `ok` clears
/// or sets the error flag.
std::string encode_response(Verb verb, bool ok, std::string_view body);

/// Build the dispatchable Request for a request frame: the payload is
/// split on whitespace and parsed with the line protocol's grammar, so
/// both framings hit identical handler code.
Request to_request(const FrameView& frame);

}  // namespace gpuperf::serve::binary
