// In-process estimation service: everything `gpuperf serve` does minus
// the sockets.  Owns a trained PerformanceEstimator, the three result
// caches (static analysis, DCA features, predictions), the predict
// micro-batcher and the metrics registry; tests, examples and benches
// drive it directly, the TCP server forwards lines to it.
//
// handle() is safe to call from many threads at once: the estimator is
// trained in the constructor and only its const predict path runs
// afterwards, all caches are internally synchronized, and feature
// computation is single-flight per model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cnn/static_analyzer.hpp"
#include "common/thread_pool.hpp"
#include "core/estimator.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace gpuperf::serve {

struct ServeOptions {
  std::string regressor_id = "dt";
  std::uint64_t seed = 42;
  /// Training subset (zoo names); empty = the full Table I zoo.
  std::vector<std::string> train_models;
  /// Training devices; empty = the paper's two (GTX 1080 Ti, V100S).
  std::vector<std::string> train_devices;
  /// Load a serialized Decision Tree instead of training from scratch.
  std::string tree_path;
  /// Entry budget for each of the three caches.
  std::size_t cache_capacity = 256;
  std::size_t cache_shards = 8;
  /// Worker pool size for batched predictions; 0 = hardware threads.
  std::size_t n_threads = 0;
  /// Route predict requests through the micro-batcher (off = inline
  /// execution on the caller thread; the caches still apply).
  bool batching = true;
};

class ServeSession {
 public:
  explicit ServeSession(ServeOptions options = {});

  /// Dispatch one request; never throws — failures become
  /// {"ok":false,...} responses and count as endpoint errors.
  Response handle(const Request& request);

  /// Parse + handle + serialize: the line in, the JSON line out.
  std::string handle_line(const std::string& line);

  /// Convenience predict with the full cache/batcher path (used by the
  /// in-process examples and benches).  Throws on unknown names.
  double predict(const std::string& model, const std::string& device);

  /// Drop every cached static report, feature vector and prediction
  /// (for cold-path measurements; counters are not reset).
  void reset_caches();

  /// Drop only cached predictions; DCA features stay warm.
  void reset_result_cache() { results_.clear(); }

  const core::PerformanceEstimator& estimator() const { return estimator_; }
  MetricsRegistry& metrics() { return metrics_; }
  CacheStats feature_cache_stats() const { return features_.stats(); }
  CacheStats result_cache_stats() const { return results_.stats(); }
  BatcherStats batcher_stats() const { return batcher_->stats(); }

  /// The stats endpoint's JSON (also handy without a Request).
  std::string stats_json();

  /// Human-readable shutdown summary: endpoint traffic + cache hit
  /// rates.
  std::string summary() const;

 private:
  using FeaturePtr = std::shared_ptr<const core::ModelFeatures>;

  Response do_predict(const Request& request);
  Response do_rank(const Request& request);
  Response do_analyze(const Request& request);
  Response do_stats();
  Response do_ping() const;
  Response do_shutdown() const;

  FeaturePtr features_for(const std::string& model);
  std::vector<double> predict_group(
      const std::string& model,
      const std::vector<const gpu::DeviceSpec*>& devices);
  struct PredictOutcome {
    double ipc = 0.0;
    bool cached = false;  // served from the result cache
  };
  PredictOutcome predict_ipc(const std::string& model,
                             const gpu::DeviceSpec& device);

  ServeOptions options_;
  core::PerformanceEstimator estimator_;
  core::FeatureExtractor extractor_;
  cnn::StaticAnalyzer analyzer_;
  ShardedLruCache<cnn::ModelReport> static_reports_;
  ShardedLruCache<core::ModelFeatures> features_;
  ShardedLruCache<double> results_;
  ThreadPool pool_;
  std::unique_ptr<PredictBatcher> batcher_;
  MetricsRegistry metrics_;
};

}  // namespace gpuperf::serve
