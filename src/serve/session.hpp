// In-process estimation service: everything `gpuperf serve` does minus
// the sockets.  Owns a trained PerformanceEstimator, the three result
// caches (static analysis, DCA features, predictions), the predict
// micro-batcher and the metrics registry; tests, examples and benches
// drive it directly, the TCP server forwards lines to it.
//
// handle() is safe to call from many threads at once: all caches are
// internally synchronized, feature computation is single-flight per
// model, and the estimator is published behind a swappable shared_ptr —
// every request takes one snapshot and uses it throughout, so a
// concurrent hot-reload (the `reload` endpoint, or registry polling)
// can never produce a torn read.  Swapping in a new bundle invalidates
// the prediction cache; DCA features are model-intrinsic and survive.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cnn/static_analyzer.hpp"
#include "common/thread_pool.hpp"
#include "core/estimator.hpp"
#include "dse/sweep.hpp"
#include "dse/sweep_cache.hpp"
#include "registry/feature_store.hpp"
#include "registry/registry.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace gpuperf::sandbox {
class WorkerPool;
}

namespace gpuperf::serve {

struct ServeOptions {
  std::string regressor_id = "dt";
  std::uint64_t seed = 42;
  /// Training subset (zoo names); empty = the full Table I zoo.
  std::vector<std::string> train_models;
  /// Training devices; empty = the paper's two (GTX 1080 Ti, V100S).
  std::vector<std::string> train_devices;
  /// Load a serialized model file instead of training from scratch.
  std::string tree_path;
  /// Serve from a model registry (docs/REGISTRY.md): load this
  /// directory's LATEST bundle (or `registry_version`) at startup and
  /// accept `reload` requests.  Takes precedence over tree_path and
  /// training.
  std::string registry_dir;
  /// Pin a specific bundle version at startup; empty = LATEST.
  std::string registry_version;
  /// Persistent DCA feature store: warm-start directory shared across
  /// server restarts (empty = in-memory caches only).
  std::string feature_store_dir;
  /// When > 0 and a registry is configured, poll the LATEST pointer
  /// every this many milliseconds and hot-reload on a version change.
  int registry_poll_ms = 0;
  /// Entry budget for each of the three caches.
  std::size_t cache_capacity = 256;
  std::size_t cache_shards = 8;
  /// Worker pool size for batched predictions; 0 = hardware threads.
  std::size_t n_threads = 0;
  /// Route predict requests through the micro-batcher (off = inline
  /// execution on the caller thread; the caches still apply).
  bool batching = true;
  /// Analysis deadline applied to predict/rank requests that don't
  /// carry their own --deadline-ms; 0 = unlimited.
  int default_deadline_ms = 0;
  /// Hard cap on symbolic-execution steps per DCA pass (a second line
  /// of defense when no wall-clock deadline is set); 0 = unlimited.
  std::uint64_t dca_step_budget = 0;
  /// When DCA times out or fails, serve a static-features-only
  /// prediction marked degraded:true instead of a typed error
  /// (overridable per request with --no-degrade).
  bool degradation = true;
  /// Shed predict/rank/analyze with `overloaded` once this many
  /// requests are already in flight; 0 = unlimited.
  std::size_t max_in_flight = 0;
  /// Bound on outstanding predicts inside the micro-batcher; beyond it
  /// submit sheds with `overloaded`.  0 = unbounded.
  std::size_t max_queue = 0;
  /// Circuit breaker (docs/ROBUSTNESS.md): after this many consecutive
  /// DCA failures for one module fingerprint, requests for that module
  /// fail fast to the degraded path without re-attempting the full
  /// analysis, until a half-open probe succeeds.  0 disables the
  /// breaker.
  int breaker_threshold = 5;
  /// How long an open breaker rejects before admitting one half-open
  /// probe request.
  int breaker_cooldown_ms = 5000;
  /// Spill directory for out-of-core dependency graphs (docs/PERF.md
  /// "Graph memory layout"); empty = keep whatever $GPUPERF_DCA_SPILL
  /// seeded.  Applied process-wide at session construction.
  std::string dca_spill_dir;
  /// Resident-byte budget before graphs spill; 0 = keep the default
  /// ($GPUPERF_DCA_SPILL_BUDGET or InputLimits'
  /// max_depgraph_resident_bytes).
  std::size_t dca_spill_budget_bytes = 0;
  /// Crash isolation (docs/ROBUSTNESS.md): run every DCA pass in a
  /// sandboxed worker process instead of in-process.  A crashing,
  /// hanging or ballooning analysis then kills a disposable worker,
  /// never the server; the failure surfaces as the typed
  /// analysis_crashed error (feeding the circuit breaker and, when
  /// degradation is on, the static-features fallback).
  bool isolate_dca = false;
  /// Sandboxed worker pool size (isolate_dca only).
  int dca_workers = 2;
  /// Kill + respawn a worker whose post-request RSS exceeds this many
  /// MiB; 0 disables the ceiling.
  std::size_t dca_worker_rss_mb = 512;
  /// SIGKILL a worker that has not answered after this many wall-clock
  /// milliseconds — the backstop for hangs the cooperative Deadline
  /// cannot interrupt.
  int dca_hard_timeout_ms = 30000;
  /// Worker-side RLIMIT_AS in MiB (0 = unlimited).
  std::size_t dca_worker_as_mb = 0;
  /// Directory for the crash flight recorder: module fingerprints of
  /// requests that killed their worker, one line per event.  Empty
  /// disables the log.
  std::string dca_quarantine_dir;
};

class ServeSession {
 public:
  explicit ServeSession(ServeOptions options = {});
  ~ServeSession();

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  /// Dispatch one request; never throws — failures become
  /// {"ok":false,...} responses and count as endpoint errors.
  Response handle(const Request& request);

  /// Parse + handle + serialize: the line in, the JSON line out.
  std::string handle_line(const std::string& line);

  /// Convenience predict with the full cache/batcher path (used by the
  /// in-process examples and benches).  Throws on unknown names.
  double predict(const std::string& model, const std::string& device);

  /// Hot-swap the estimator to a registry bundle (empty = LATEST) and
  /// drop cached predictions.  Requires a configured registry; throws
  /// on a missing/corrupt bundle, in which case the live model keeps
  /// serving.  Returns the installed version.  In-flight predicts
  /// finish on whichever estimator they snapshotted.
  std::string reload(const std::string& version = "");

  /// Drop every cached static report, feature vector and prediction
  /// (for cold-path measurements; counters are not reset).
  void reset_caches();

  /// Drop only cached predictions; DCA features stay warm.
  void reset_result_cache() { results_.clear(); }

  /// The live estimator.  The reference stays valid until the next
  /// reload; concurrent readers should hold estimator_ptr() instead.
  const core::PerformanceEstimator& estimator() const;
  std::shared_ptr<const core::PerformanceEstimator> estimator_ptr() const;

  /// Version of the live registry bundle ("" when not serving from a
  /// registry) and the number of completed hot-reloads.
  std::string live_version() const;
  std::uint64_t reload_count() const { return reloads_.load(); }

  /// Dynamic-code-analysis passes actually executed by this session
  /// (a persistent-feature-store hit avoids one; the warm-restart
  /// bench asserts this stays 0).
  std::uint64_t dca_compute_count() const { return dca_computes_.load(); }
  /// Feature vectors served from the persistent store.
  std::uint64_t feature_store_hit_count() const {
    return store_hits_.load();
  }

  /// Run one DSE sweep through the session's shared machinery: the
  /// estimator snapshot, the single-flight DCA path (feature cache +
  /// persistent store), and the persistent sweep cache when a
  /// --store directory is configured.  This is what the `dse` verb
  /// calls; exposed for in-process benches and tests.
  dse::SweepResult sweep(const dse::SweepRequest& request);

  /// The persistent sweep cache (nullptr without a feature store dir).
  const dse::SweepCache* sweep_cache() const { return sweep_cache_.get(); }

  /// The sandboxed DCA worker pool (nullptr unless isolate_dca).
  sandbox::WorkerPool* sandbox_pool() { return sandbox_pool_.get(); }

  MetricsRegistry& metrics() { return metrics_; }
  CacheStats feature_cache_stats() const { return features_.stats(); }
  CacheStats result_cache_stats() const { return results_.stats(); }
  BatcherStats batcher_stats() const { return batcher_->stats(); }

  /// The stats endpoint's JSON (also handy without a Request).
  std::string stats_json();

  /// Install a callback run at the top of stats_json() — the TCP
  /// server uses it to sync event-loop counters (connections, bytes,
  /// wakeups) into the metrics registry just before they're emitted.
  /// Pass an empty function to clear; thread-safe.
  void set_stats_hook(std::function<void()> hook);

  /// Loop-health callbacks consulted by the `ready` verb; the TCP
  /// server installs them so readiness reflects the event loop's
  /// watchdog heartbeat and drain state.  In-process sessions (no
  /// server) stay ready by default.  Thread-safe.
  struct ReadyProbe {
    std::function<bool()> loop_healthy;  // heartbeat fresh?
    std::function<bool()> draining;      // graceful drain under way?
  };
  void set_ready_probe(ReadyProbe probe);

  /// The `ready` verb's verdict: the model is loaded, no reload or
  /// quarantine repair is in flight, the registry poller is not in a
  /// failure streak, the loop heartbeat is fresh and the server is not
  /// draining.  `reasons` lists every failing condition.
  struct ReadyState {
    bool ready = true;
    std::vector<std::string> reasons;
  };
  ReadyState ready_state();

  /// Human-readable shutdown summary: endpoint traffic + cache hit
  /// rates.
  std::string summary() const;

 private:
  using FeaturePtr = std::shared_ptr<const core::ModelFeatures>;

  Response do_predict(const Request& request);
  Response do_rank(const Request& request);
  Response do_dse(const Request& request);
  Response do_analyze(const Request& request);
  Response do_reload(const Request& request);
  Response do_model_info();
  Response do_stats();
  Response do_ping() const;
  Response do_health();
  Response do_ready();
  Response do_shutdown() const;

  FeaturePtr features_for(const std::string& model,
                          const Deadline& deadline = {});
  FeaturePtr compute_features(const std::string& model,
                              const Deadline& deadline);
  /// One DCA pass: in a sandboxed worker when isolate_dca, else the
  /// in-process extractor.  Worker death throws sandbox::AnalysisCrashed.
  core::ModelFeatures run_dca(const std::string& model,
                              const cnn::Model& cnn_model,
                              const Deadline& deadline);
  std::vector<double> predict_group(
      const std::string& model,
      const std::vector<const gpu::DeviceSpec*>& devices,
      const Deadline& deadline);
  struct PredictOutcome {
    double ipc = 0.0;
    bool cached = false;    // served from the result cache
    bool degraded = false;  // static-features fallback, not full DCA
  };
  PredictOutcome predict_ipc(const std::string& model,
                             const gpu::DeviceSpec& device,
                             const Deadline& deadline);
  /// predict_ipc, falling back to predict_degraded on AnalysisTimeout
  /// or analysis failure when `allow_degrade` (overload shedding is
  /// never swallowed — it propagates as ServeError).
  PredictOutcome predict_or_degrade(const std::string& model,
                                    const gpu::DeviceSpec& device,
                                    const Deadline& deadline,
                                    bool allow_degrade);
  /// Static-features-only prediction: trainable params from the (cheap)
  /// static analyzer, executed instructions imputed from the running
  /// mean of completed DCA passes.  Never cached as a fresh result.
  PredictOutcome predict_degraded(const std::string& model,
                                  const gpu::DeviceSpec& device);
  /// The per-request deadline: --deadline-ms on the request, else the
  /// configured default; plus the configured step budget.
  Deadline deadline_for(const Request& request) const;

  // ---- circuit breaker (per module fingerprint) ----------------------
  /// One breaker per distinct module topology: consecutive DCA
  /// failures open it, a cooldown admits one half-open probe, a
  /// successful probe closes it again.
  struct Breaker {
    int consecutive_failures = 0;
    std::int64_t open_until_ms = 0;  // 0 = closed
    bool probe_in_flight = false;    // half-open: one request testing
  };
  /// Topology fingerprint of a zoo model (cached; cheap layer-level
  /// hash, no DCA).
  std::uint64_t module_fingerprint(const std::string& model);
  /// False when the breaker is open and this request must fast-fail.
  bool breaker_admit(std::uint64_t fingerprint);
  void breaker_record_success(std::uint64_t fingerprint);
  void breaker_record_failure(std::uint64_t fingerprint);
  void observe_instructions(std::int64_t executed_instructions);
  std::int64_t imputed_executed_instructions(
      std::int64_t trainable_params) const;

  /// Publish `estimator` as the live model (wires the feature-provider
  /// hook, swaps the shared_ptr).
  void install_estimator(core::PerformanceEstimator estimator,
                         std::string version, registry::Manifest manifest,
                         std::string source);
  void start_polling();

  /// Applies the session's DCA spill knobs to the process-wide config
  /// and returns the options unchanged.  Runs while initializing
  /// `options_` — i.e. before `extractor_` (whose InstructionCounter
  /// builds the shared kernel-library graphs) is constructed, so even
  /// those startup graphs see the requested budget/directory.
  static ServeOptions apply_dca_spill_knobs(ServeOptions options);

  ServeOptions options_;
  std::unique_ptr<registry::ModelRegistry> registry_;
  std::unique_ptr<registry::FeatureStore> feature_store_;
  std::unique_ptr<dse::SweepCache> sweep_cache_;
  // Declared before the thread pool and batcher so it is destroyed
  // after them: worker-pool shutdown must not race in-flight predicts
  // still running on session threads.
  std::unique_ptr<sandbox::WorkerPool> sandbox_pool_;

  mutable std::mutex estimator_mutex_;
  std::shared_ptr<const core::PerformanceEstimator> estimator_;
  std::string bundle_key_;            // guarded by estimator_mutex_
  std::string live_version_;          // guarded by estimator_mutex_
  registry::Manifest live_manifest_;  // guarded by estimator_mutex_
  std::string model_source_;          // "registry" | "file" | "trained"

  core::FeatureExtractor extractor_;
  cnn::StaticAnalyzer analyzer_;
  ShardedLruCache<cnn::ModelReport> static_reports_;
  ShardedLruCache<core::ModelFeatures> features_;
  ShardedLruCache<double> results_;
  ThreadPool pool_;
  std::unique_ptr<PredictBatcher> batcher_;
  MetricsRegistry metrics_;

  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> dca_computes_{0};
  std::atomic<std::uint64_t> store_hits_{0};

  // Running mean of executed_instructions over every DCA result this
  // session has seen (warm-started from the feature store) — the
  // degraded path's imputation source.  The paper's Gini analysis puts
  // executed-instructions importance at only 0.014, so an imputed value
  // still yields a useful prediction.
  std::atomic<std::int64_t> observed_instruction_sum_{0};
  std::atomic<std::uint64_t> observed_instruction_count_{0};

  std::mutex stats_hook_mutex_;
  std::function<void()> stats_hook_;  // guarded by stats_hook_mutex_
  ReadyProbe ready_probe_;            // guarded by stats_hook_mutex_

  std::mutex breaker_mutex_;
  std::unordered_map<std::uint64_t, Breaker> breakers_;
  std::unordered_map<std::string, std::uint64_t> fingerprints_;

  // Readiness signals: a reload (endpoint, API, or poller repair) in
  // flight, and the poller's current consecutive-failure streak.
  std::atomic<bool> reloading_{false};
  std::atomic<int> poll_failure_streak_{0};
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();

  std::mutex poll_mutex_;
  std::condition_variable poll_cv_;
  bool poll_stop_ = false;
  std::thread poll_thread_;
};

}  // namespace gpuperf::serve
