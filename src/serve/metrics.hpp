// Service metrics: per-endpoint request/error counters and log-bucketed
// latency histograms (p50/p95), plus an in-flight gauge.  Everything is
// lock-free on the hot path (atomic bumps); the registry map itself is
// mutex-guarded but endpoints are created once and then only read.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"

namespace gpuperf::serve {

class JsonWriter;

/// Geometric-bucket latency histogram: 64 buckets spanning 1 µs to
/// ~100 s (ratio ~1.34 per bucket), so percentile error is bounded at
/// ~±15 % anywhere in the range — plenty for p50/p95 service stats.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(double seconds);

  std::uint64_t count() const { return count_.load(); }
  double total_seconds() const {
    return static_cast<double>(total_nanos_.load()) * 1e-9;
  }
  double mean_seconds() const;
  double max_seconds() const {
    return static_cast<double>(max_nanos_.load()) * 1e-9;
  }
  /// p in (0, 1]; returns 0 when nothing was recorded.  The answer is
  /// the geometric midpoint of the bucket holding the p-quantile.
  double percentile(double p) const;

 private:
  static double bucket_upper_bound(int bucket);
  static int bucket_for(double seconds);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_nanos_{0};
  std::atomic<std::uint64_t> max_nanos_{0};
};

struct EndpointMetrics {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  LatencyHistogram latency;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the returned reference stays valid for the
  /// registry's lifetime.
  EndpointMetrics& endpoint(const std::string& name);

  /// Find-or-create a named monotonic counter (degraded responses,
  /// analysis timeouts, shed requests, ...); same lifetime guarantee.
  std::atomic<std::uint64_t>& counter(const std::string& name);

  /// Current value of a named counter; 0 when it was never bumped.
  std::uint64_t counter_value(const std::string& name) const;

  std::int64_t in_flight() const { return in_flight_.load(); }
  double uptime_seconds() const { return uptime_.elapsed_seconds(); }

  /// Emit {"uptime_seconds":..,"in_flight":..,"endpoints":{...}} fields
  /// into an already-open JSON object.
  void write_json(JsonWriter& json) const;

  /// Human-readable shutdown summary (one line per endpoint).
  std::string summary() const;

  /// RAII request tracker: bumps the in-flight gauge, then records
  /// latency + outcome on destruction.
  class ScopedRequest {
   public:
    ScopedRequest(MetricsRegistry& registry, EndpointMetrics& endpoint);
    ~ScopedRequest();
    ScopedRequest(const ScopedRequest&) = delete;
    ScopedRequest& operator=(const ScopedRequest&) = delete;
    void mark_error() { error_ = true; }

   private:
    MetricsRegistry& registry_;
    EndpointMetrics& endpoint_;
    Stopwatch watch_;
    bool error_ = false;
  };

 private:
  std::vector<std::pair<std::string, const EndpointMetrics*>>
  sorted_endpoints() const;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<EndpointMetrics>> endpoints_;
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>>
      counters_;
  std::atomic<std::int64_t> in_flight_{0};
  Stopwatch uptime_;
};

}  // namespace gpuperf::serve
