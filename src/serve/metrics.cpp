#include "serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/strings.hpp"
#include "serve/protocol.hpp"

namespace gpuperf::serve {

namespace {

// Bucket i covers (kMinSeconds * r^(i-1), kMinSeconds * r^i]; the last
// bucket is open-ended.
constexpr double kMinSeconds = 1e-6;
constexpr double kMaxSeconds = 100.0;
const double kRatio =
    std::pow(kMaxSeconds / kMinSeconds,
             1.0 / (LatencyHistogram::kBuckets - 1));

}  // namespace

double LatencyHistogram::bucket_upper_bound(int bucket) {
  return kMinSeconds * std::pow(kRatio, bucket);
}

int LatencyHistogram::bucket_for(double seconds) {
  if (seconds <= kMinSeconds) return 0;
  const int b = static_cast<int>(
      std::ceil(std::log(seconds / kMinSeconds) / std::log(kRatio)));
  return std::min(b, kBuckets - 1);
}

void LatencyHistogram::record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;
  buckets_[bucket_for(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const auto nanos = static_cast<std::uint64_t>(seconds * 1e9);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean_seconds() const {
  const std::uint64_t n = count_.load();
  return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
}

double LatencyHistogram::percentile(double p) const {
  const std::uint64_t n = count_.load();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(p * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      const double hi = bucket_upper_bound(b);
      const double lo = b == 0 ? 0.0 : bucket_upper_bound(b - 1);
      return lo == 0.0 ? hi : std::sqrt(lo * hi);  // geometric midpoint
    }
  }
  return bucket_upper_bound(kBuckets - 1);
}

EndpointMetrics& MetricsRegistry::endpoint(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = endpoints_[name];
  if (!slot) slot = std::make_unique<EndpointMetrics>();
  return *slot;
}

std::atomic<std::uint64_t>& MetricsRegistry::counter(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<std::atomic<std::uint64_t>>(0);
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->load();
}

std::vector<std::pair<std::string, const EndpointMetrics*>>
MetricsRegistry::sorted_endpoints() const {
  std::vector<std::pair<std::string, const EndpointMetrics*>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(endpoints_.size());
  for (const auto& [name, metrics] : endpoints_)
    out.emplace_back(name, metrics.get());
  return out;  // std::map iteration order is already sorted
}

void MetricsRegistry::write_json(JsonWriter& json) const {
  json.field("uptime_seconds", uptime_seconds());
  json.field("in_flight", static_cast<std::int64_t>(in_flight()));
  json.begin_object("endpoints");
  for (const auto& [name, metrics] : sorted_endpoints()) {
    json.begin_object(name);
    json.field("requests", metrics->requests.load());
    json.field("errors", metrics->errors.load());
    json.field("p50_ms", metrics->latency.percentile(0.50) * 1e3);
    json.field("p95_ms", metrics->latency.percentile(0.95) * 1e3);
    json.field("mean_ms", metrics->latency.mean_seconds() * 1e3);
    json.field("max_ms", metrics->latency.max_seconds() * 1e3);
    json.end_object();
  }
  json.end_object();
  json.begin_object("counters");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, value] : counters_)
      json.field(name, value->load());
  }
  json.end_object();
}

std::string MetricsRegistry::summary() const {
  std::ostringstream os;
  os << "served for " << fixed(uptime_seconds(), 1) << " s\n";
  for (const auto& [name, metrics] : sorted_endpoints()) {
    const std::uint64_t n = metrics->requests.load();
    if (n == 0) continue;
    os << "  " << name << ": " << n << " requests, "
       << metrics->errors.load() << " errors, p50 "
       << fixed(metrics->latency.percentile(0.50) * 1e3, 3) << " ms, p95 "
       << fixed(metrics->latency.percentile(0.95) * 1e3, 3) << " ms\n";
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool any = false;
    for (const auto& [name, value] : counters_) {
      const std::uint64_t v = value->load();
      if (v == 0) continue;
      os << (any ? ", " : "  ") << name << " " << v;
      any = true;
    }
    if (any) os << "\n";
  }
  return os.str();
}

MetricsRegistry::ScopedRequest::ScopedRequest(MetricsRegistry& registry,
                                              EndpointMetrics& endpoint)
    : registry_(registry), endpoint_(endpoint) {
  registry_.in_flight_.fetch_add(1, std::memory_order_relaxed);
}

MetricsRegistry::ScopedRequest::~ScopedRequest() {
  endpoint_.requests.fetch_add(1, std::memory_order_relaxed);
  if (error_) endpoint_.errors.fetch_add(1, std::memory_order_relaxed);
  endpoint_.latency.record(watch_.elapsed_seconds());
  registry_.in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace gpuperf::serve
