#include "serve/batcher.hpp"

#include <map>
#include <memory>
#include <utility>

#include "common/check.hpp"

namespace gpuperf::serve {

PredictBatcher::PredictBatcher(ThreadPool& pool, GroupFn predict_group)
    : pool_(pool), predict_group_(std::move(predict_group)) {
  GP_CHECK(predict_group_ != nullptr);
}

std::future<double> PredictBatcher::submit(const std::string& model,
                                           const gpu::DeviceSpec& device) {
  Job job;
  job.model = model;
  job.device = &device;
  std::future<double> result = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    if (flushing_) return result;  // the current leader will take it
    flushing_ = true;
  }
  // Leader: drain until the queue stays empty.  Dispatch happens
  // outside the lock, so requests arriving mid-flush form the next
  // batch instead of waiting behind it.
  flushes_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    std::vector<Job> batch;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) {
        flushing_ = false;
        return result;
      }
      batch.swap(queue_);
    }
    dispatch(std::move(batch));
  }
}

void PredictBatcher::dispatch(std::vector<Job> batch) {
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  std::map<std::string, std::vector<Job>> groups;
  for (Job& job : batch) groups[job.model].push_back(std::move(job));
  for (auto& [model, jobs] : groups) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (jobs.size() > seen &&
           !max_batch_.compare_exchange_weak(seen, jobs.size(),
                                             std::memory_order_relaxed)) {
    }
    auto group = std::make_shared<std::vector<Job>>(std::move(jobs));
    const std::string name = model;
    pool_.submit([this, name, group] {
      std::vector<const gpu::DeviceSpec*> devices;
      devices.reserve(group->size());
      for (const Job& job : *group) devices.push_back(job.device);
      try {
        const std::vector<double> ipc = predict_group_(name, devices);
        GP_CHECK(ipc.size() == group->size());
        for (std::size_t i = 0; i < group->size(); ++i)
          (*group)[i].promise.set_value(ipc[i]);
      } catch (...) {
        for (Job& job : *group)
          job.promise.set_exception(std::current_exception());
      }
    });
  }
}

BatcherStats PredictBatcher::stats() const {
  BatcherStats out;
  out.flushes = flushes_.load();
  out.batches = batches_.load();
  out.batched_requests = batched_requests_.load();
  out.max_batch = max_batch_.load();
  return out;
}

}  // namespace gpuperf::serve
