#include "serve/batcher.hpp"

#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "serve/errors.hpp"

namespace gpuperf::serve {

PredictBatcher::PredictBatcher(ThreadPool& pool, GroupFn predict_group,
                               std::size_t max_outstanding)
    : pool_(pool),
      predict_group_(std::move(predict_group)),
      max_outstanding_(max_outstanding) {
  GP_CHECK(predict_group_ != nullptr);
}

std::future<double> PredictBatcher::submit(const std::string& model,
                                           const gpu::DeviceSpec& device,
                                           const Deadline& deadline) {
  if (max_outstanding_ > 0) {
    const std::int64_t pending =
        outstanding_.load(std::memory_order_relaxed);
    if (pending >= static_cast<std::int64_t>(max_outstanding_)) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      std::ostringstream os;
      os << "predict queue full (" << pending << " outstanding, bound "
         << max_outstanding_ << ")";
      throw ServeError(ErrorCode::kOverloaded, os.str());
    }
  }
  Job job;
  job.model = model;
  job.device = &device;
  job.deadline = deadline;
  std::future<double> result = job.promise.get_future();
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
    if (flushing_) return result;  // the current leader will take it
    flushing_ = true;
  }
  // Leader: drain until the queue stays empty.  Dispatch happens
  // outside the lock, so requests arriving mid-flush form the next
  // batch instead of waiting behind it.  dispatch() never throws — any
  // group failure lands in that group's futures — so flushing_ cannot
  // get stuck true.
  flushes_.fetch_add(1, std::memory_order_relaxed);
  for (;;) {
    std::vector<Job> batch;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queue_.empty()) {
        flushing_ = false;
        return result;
      }
      batch.swap(queue_);
    }
    dispatch(std::move(batch));
  }
}

/// Resolve one job exactly once, tolerating an already-satisfied
/// promise (possible only if predict_group lied about its result size
/// after a partial delivery — the remaining jobs still get the error).
void PredictBatcher::settle(Job& job, const double* ipc,
                            std::exception_ptr error) {
  try {
    if (error)
      job.promise.set_exception(error);
    else
      job.promise.set_value(*ipc);
  } catch (const std::future_error&) {
    // already satisfied — nothing left to deliver
  }
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
}

void PredictBatcher::dispatch(std::vector<Job> batch) {
  batched_requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  std::map<std::string, std::vector<Job>> groups;
  for (Job& job : batch) groups[job.model].push_back(std::move(job));
  for (auto& [model, jobs] : groups) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (jobs.size() > seen &&
           !max_batch_.compare_exchange_weak(seen, jobs.size(),
                                             std::memory_order_relaxed)) {
    }
    auto group = std::make_shared<std::vector<Job>>(std::move(jobs));
    // The group must honor its most patient member; a tight deadline
    // from one request must not cut short a batch-mate's budget.
    Deadline deadline;
    if (!group->empty()) {
      deadline = group->front().deadline;
      for (std::size_t i = 1; i < group->size(); ++i)
        deadline = Deadline::loosest(deadline, (*group)[i].deadline);
    }
    const std::string name = model;
    auto worker = [this, name, group, deadline] {
      std::vector<const gpu::DeviceSpec*> devices;
      devices.reserve(group->size());
      for (const Job& job : *group) devices.push_back(job.device);
      std::vector<double> ipc;
      std::exception_ptr failure;
      try {
        GPUPERF_FAULT_POINT_D("batcher.dispatch", &deadline);
        ipc = predict_group_(name, devices, deadline);
        GP_CHECK_MSG(ipc.size() == group->size(),
                     "predict_group returned " << ipc.size()
                         << " results for a group of " << group->size());
      } catch (...) {
        failure = std::current_exception();
      }
      for (std::size_t i = 0; i < group->size(); ++i)
        settle((*group)[i], failure ? nullptr : &ipc[i], failure);
    };
    try {
      pool_.submit(std::move(worker));
    } catch (...) {
      // The pool refused the task (shutting down / resource failure):
      // the group's waiters must still hear about it.
      const std::exception_ptr error = std::current_exception();
      for (Job& job : *group) settle(job, nullptr, error);
    }
  }
}

BatcherStats PredictBatcher::stats() const {
  BatcherStats out;
  out.flushes = flushes_.load();
  out.batches = batches_.load();
  out.batched_requests = batched_requests_.load();
  out.max_batch = max_batch_.load();
  out.shed = shed_.load();
  return out;
}

}  // namespace gpuperf::serve
