// Minimal blocking client for the gpuperf serve line protocol: send a
// request line, read the single JSON response line.  Used by the
// `gpuperf client` subcommand, the server tests and the CI smoke test.
//
// Every socket operation is bounded: connect via non-blocking
// connect+poll, send/recv via SO_SNDTIMEO/SO_RCVTIMEO — a hung server
// surfaces as a ClientError with timed_out() set instead of blocking
// the CLI forever.  request_with_retry() adds exponential backoff with
// jitter on top for transient failures and `overloaded` shedding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/limits.hpp"

namespace gpuperf::serve {

/// Connection or I/O failure talking to a server.  Derives from
/// CheckError (a dead or hung peer is a caller-visible condition, not
/// an internal bug); timed_out() distinguishes "a configured timeout
/// expired" from "the peer refused or dropped the connection".
class ClientError : public CheckError {
 public:
  ClientError(const std::string& what, bool timed_out)
      : CheckError(what), timed_out_(timed_out) {}
  bool timed_out() const { return timed_out_; }

 private:
  bool timed_out_;
};

class TcpClient {
 public:
  struct Options {
    /// 0 disables the corresponding timeout (fully blocking).
    int connect_timeout_ms = 5000;
    int io_timeout_ms = 30000;
    /// Longest accepted response line; a peer that streams more without
    /// a newline gets a ClientError instead of growing the buffer
    /// without bound (docs/ROBUSTNESS.md).  In binary mode the same
    /// bound applies to a response frame's payload.
    std::size_t max_response_bytes =
        InputLimits::defaults().max_response_bytes;
    /// Speak the length-prefixed binary protocol
    /// (serve/binary_protocol.hpp) instead of the line protocol.
    /// request() keeps its line-shaped interface: the verb word is
    /// mapped to its wire id, the rest of the line rides as the frame
    /// payload, and the returned string is the response frame's JSON
    /// body — so callers are framing-agnostic.
    bool binary = false;
  };

  /// Connects immediately; throws ClientError if the server is
  /// unreachable or the connect timeout expires.
  TcpClient(const std::string& host, int port, Options options);
  TcpClient(const std::string& host, int port)
      : TcpClient(host, port, Options()) {}
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Send one request line (the trailing newline is added here) and
  /// block for the response line, returned without its newline.
  /// In binary mode (Options::binary) the line is framed and the
  /// response frame's body returned instead.  Throws ClientError on a
  /// drop, an I/O timeout, or a malformed response frame.
  std::string request(const std::string& line);

 private:
  void send_all(const std::string& data);
  std::string request_line(const std::string& line);
  std::string request_binary(const std::string& line);

  int fd_ = -1;
  std::size_t max_response_bytes_ = 0;
  bool binary_ = false;
  std::string buffer_;  // bytes read past the previous response
};

/// Backoff schedule for request_with_retry.
struct RetryPolicy {
  int attempts = 4;
  /// Sleep before retry k is uniform in [0, base * 2^(k-1)], capped at
  /// max — full jitter, so synchronized clients spread out instead of
  /// hammering a recovering server in lockstep.
  int base_backoff_ms = 100;
  int max_backoff_ms = 2000;
  /// Jitter source; 0 picks a fixed default (still deterministic).
  std::uint64_t seed = 0;
};

/// One request over a fresh connection, retried per `policy` on
/// connect failure, I/O timeout, dropped connection, or an
/// {"code":"overloaded"} response.  Returns the first non-overloaded
/// response; throws ClientError when every attempt fails.
std::string request_with_retry(const std::string& host, int port,
                               const std::string& line,
                               RetryPolicy policy = {},
                               TcpClient::Options options = {});

/// One server address in a failover set.
struct Endpoint {
  std::string host;
  int port = 0;
};

/// Parse a comma-separated "host:port,host:port" list (the client's
/// --endpoints flag).  GP_CHECK-fails on an empty list, a missing
/// colon, or a port outside [1, 65535].
std::vector<Endpoint> parse_endpoints(const std::string& spec);

/// Multi-endpoint client with failover: each request walks the
/// endpoint list in order, skipping endpoints whose per-endpoint
/// breaker is open (too many consecutive failures → a cooldown before
/// they are retried), under a single retry budget shared across
/// endpoints.  Optionally hedges idempotent verbs: if the primary
/// endpoint has not answered within hedge_delay_ms a duplicate request
/// races on the next healthy endpoint and the first response wins —
/// never for state-changing verbs (reload, shutdown) or the heavy dse
/// sweep, which would double real work.
///
/// Thread-compatible, not thread-safe: one FailoverClient per thread.
class FailoverClient {
 public:
  struct Options {
    TcpClient::Options client;
    /// Total attempt/backoff budget per request(), shared across every
    /// endpoint tried — failover does not multiply retries.
    RetryPolicy retry;
    /// Consecutive failures that open an endpoint's breaker (0 = never
    /// skip an endpoint).
    int endpoint_failure_threshold = 3;
    /// How long an open endpoint is skipped before it is probed again.
    int endpoint_cooldown_ms = 2000;
    /// Hedge idempotent requests across two endpoints.
    bool hedge = false;
    /// How long the primary gets before the hedge fires.
    int hedge_delay_ms = 250;
  };

  FailoverClient(std::vector<Endpoint> endpoints, Options options);

  /// One request with failover (and hedging when enabled).  Throws
  /// ClientError once the retry budget is exhausted.
  std::string request(const std::string& line);

  /// Per-endpoint health snapshot, for tests and --verbose output.
  struct EndpointHealth {
    std::uint64_t attempts = 0;
    std::uint64_t failures = 0;
    int consecutive_failures = 0;
    bool open = false;
  };
  EndpointHealth health(std::size_t index) const;
  std::size_t endpoint_count() const { return endpoints_.size(); }

 private:
  struct State;  // shared with detached hedge threads

  /// The k-th endpoint choice for this request: healthy endpoints in
  /// list order, rotated by attempt so retries fail over instead of
  /// hammering the same peer; an all-open list degrades to plain
  /// rotation (an open breaker is a hint, not a hard block).
  std::size_t pick_endpoint(int attempt) const;
  std::string one_request(std::size_t index, const std::string& line);
  std::string hedged_request(std::size_t primary, const std::string& line);
  void record(std::size_t index, bool success);

  std::vector<Endpoint> endpoints_;
  Options options_;
  std::shared_ptr<State> state_;
};

}  // namespace gpuperf::serve
