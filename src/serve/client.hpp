// Minimal blocking client for the gpuperf serve line protocol: send a
// request line, read the single JSON response line.  Used by the
// `gpuperf client` subcommand, the server tests and the CI smoke test.
#pragma once

#include <string>

namespace gpuperf::serve {

class TcpClient {
 public:
  /// Connects immediately; GP_CHECK-fails if the server is unreachable.
  TcpClient(const std::string& host, int port);
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Send one request line (the trailing newline is added here) and
  /// block for the response line, returned without its newline.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the previous response line
};

}  // namespace gpuperf::serve
