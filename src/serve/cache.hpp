// Serve-layer cache names.  The sharded single-flight LRU template
// moved to common/sharded_cache.hpp so lower layers (the PTX
// instruction counter's launch-config memo) can reuse it; this header
// keeps the serve:: spelling that the service code and tests use.
#pragma once

#include "common/sharded_cache.hpp"

namespace gpuperf::serve {

using gpuperf::CacheStats;

template <typename Value>
using ShardedLruCache = gpuperf::ShardedLruCache<Value>;

}  // namespace gpuperf::serve
