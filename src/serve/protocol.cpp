#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace gpuperf::serve {

ParsedCommand parse_command(const std::vector<std::string>& words) {
  ParsedCommand out;
  bool positional_only = false;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::string& word = words[i];
    if (positional_only || !starts_with(word, "--")) {
      out.positional.push_back(word);
      continue;
    }
    if (word == "--") {
      positional_only = true;
      continue;
    }
    const std::string body = word.substr(2);
    if (const auto eq = body.find('='); eq != std::string::npos) {
      out.flags[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < words.size() && !starts_with(words[i + 1], "--")) {
      out.flags[body] = words[++i];
    } else {
      out.flags[body] = "";
    }
  }
  return out;
}

Request parse_request(const std::string& line) {
  Request request;
  request.raw = std::string(trim(line));
  std::vector<std::string> words = split_ws(request.raw);
  if (words.empty()) return request;
  request.verb = words.front();
  words.erase(words.begin());
  request.cmd = parse_command(words);
  return request;
}

Response error_response(const std::string& message) {
  // Untyped legacy form: callers that know better use the ErrorCode
  // overload in serve/errors.hpp.  Everything routed here is a request
  // the server could never satisfy, hence invalid_request.
  JsonWriter json;
  json.begin_object()
      .field("ok", false)
      .field("code", "invalid_request")
      .field("error", std::string_view(message))
      .end_object();
  return Response{false, json.str(), false};
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = true;
}

void JsonWriter::key(std::string_view k) {
  comma();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
}

void JsonWriter::scalar(std::string_view text) {
  out_ += text;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view k) {
  key(k);
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view k) {
  key(k);
  out_ += '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view value) {
  key(k);
  out_ += '"';
  out_ += json_escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, const char* value) {
  return field(k, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view k, double value) {
  key(k);
  if (!std::isfinite(value)) {
    scalar("null");
  } else {
    char buf[64];
    // %.17g round-trips every finite double exactly, so a client that
    // parses the response recovers the bit-identical prediction.
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    scalar(buf);
  }
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::int64_t value) {
  key(k);
  scalar(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t value) {
  key(k);
  scalar(std::to_string(value));
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool value) {
  key(k);
  scalar(value ? "true" : "false");
  return *this;
}

}  // namespace gpuperf::serve
