#include "serve/binary_protocol.hpp"

#include <cstring>

#include "common/crc32.hpp"
#include "common/strings.hpp"

namespace gpuperf::serve::binary {

namespace {

constexpr std::uint8_t kMinVerb = static_cast<std::uint8_t>(Verb::kPredict);
constexpr std::uint8_t kMaxVerb =
    static_cast<std::uint8_t>(Verb::kReady);

std::uint32_t read_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         static_cast<std::uint32_t>(b[1]) << 8 |
         static_cast<std::uint32_t>(b[2]) << 16 |
         static_cast<std::uint32_t>(b[3]) << 24;
}

void append_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::string encode_frame(Verb verb, std::uint8_t flags,
                         std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kMagic));
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(verb));
  out.push_back(static_cast<char>(flags));
  append_u32le(out, static_cast<std::uint32_t>(payload.size()));
  append_u32le(out, crc32(payload));
  out.append(payload);
  return out;
}

}  // namespace

std::string_view verb_name(Verb verb) {
  switch (verb) {
    case Verb::kPredict: return "predict";
    case Verb::kRank: return "rank";
    case Verb::kDse: return "dse";
    case Verb::kAnalyze: return "analyze";
    case Verb::kReload: return "reload";
    case Verb::kModelInfo: return "model_info";
    case Verb::kStats: return "stats";
    case Verb::kPing: return "ping";
    case Verb::kShutdown: return "shutdown";
    case Verb::kHealth: return "health";
    case Verb::kReady: return "ready";
  }
  return "";
}

bool verb_from_name(std::string_view name, Verb& out) {
  for (std::uint8_t v = kMinVerb; v <= kMaxVerb; ++v) {
    if (verb_name(static_cast<Verb>(v)) == name) {
      out = static_cast<Verb>(v);
      return true;
    }
  }
  return false;
}

std::string_view decode_status_name(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kNeedMore: return "need_more";
    case DecodeStatus::kFrame: return "frame";
    case DecodeStatus::kBadMagic: return "bad_magic";
    case DecodeStatus::kBadVersion: return "bad_version";
    case DecodeStatus::kBadVerb: return "bad_verb";
    case DecodeStatus::kBadCrc: return "bad_crc";
    case DecodeStatus::kTooLarge: return "too_large";
  }
  return "";
}

DecodeResult decode_frame(std::string_view bytes,
                          const InputLimits& limits) {
  DecodeResult r;
  if (bytes.empty()) return r;  // kNeedMore
  if (static_cast<unsigned char>(bytes[0]) != kMagic) {
    r.status = DecodeStatus::kBadMagic;
    r.error = "bad frame magic";
    return r;
  }
  if (bytes.size() >= 2 &&
      static_cast<std::uint8_t>(bytes[1]) != kVersion) {
    r.status = DecodeStatus::kBadVersion;
    r.error = "unsupported frame version " +
              std::to_string(static_cast<unsigned>(
                  static_cast<std::uint8_t>(bytes[1])));
    return r;
  }
  if (bytes.size() >= 3) {
    const std::uint8_t verb = static_cast<std::uint8_t>(bytes[2]);
    if (verb < kMinVerb || verb > kMaxVerb) {
      r.status = DecodeStatus::kBadVerb;
      r.error =
          "unknown frame verb " + std::to_string(unsigned{verb});
      return r;
    }
  }
  if (bytes.size() < kHeaderBytes) return r;  // kNeedMore
  const std::uint32_t length = read_u32le(bytes.data() + 4);
  // Enforced from the header alone: an adversarial length never makes
  // the connection buffer grow past the budget.
  if (length > limits.max_frame_payload_bytes) {
    r.status = DecodeStatus::kTooLarge;
    r.error = "frame payload of " + std::to_string(length) +
              " bytes exceeds the " +
              std::to_string(limits.max_frame_payload_bytes) +
              "-byte limit";
    return r;
  }
  if (bytes.size() < kHeaderBytes + length) return r;  // kNeedMore
  const std::string_view payload = bytes.substr(kHeaderBytes, length);
  if (crc32(payload) != read_u32le(bytes.data() + 8)) {
    r.status = DecodeStatus::kBadCrc;
    r.error = "frame payload fails its CRC-32 check";
    return r;
  }
  r.status = DecodeStatus::kFrame;
  r.frame.version = static_cast<std::uint8_t>(bytes[1]);
  r.frame.verb = static_cast<Verb>(static_cast<std::uint8_t>(bytes[2]));
  r.frame.flags = static_cast<std::uint8_t>(bytes[3]);
  r.frame.payload = payload;
  r.consumed = kHeaderBytes + length;
  return r;
}

std::string encode_request(Verb verb, std::string_view args) {
  return encode_frame(verb, 0, args);
}

std::string encode_response(Verb verb, bool ok, std::string_view body) {
  return encode_frame(verb, ok ? 0 : kFlagError, body);
}

Request to_request(const FrameView& frame) {
  // The verb already arrived as a wire id, so only the payload goes
  // through the line grammar (same tokenizer, same flag rules) — a
  // binary request never re-tokenizes its verb, and a bare verb skips
  // the tokenizer entirely.
  Request request;
  request.verb = verb_name(frame.verb);
  const std::string_view args = trim(frame.payload);
  if (args.empty()) {
    request.raw = request.verb;
    return request;
  }
  request.raw = request.verb;
  request.raw += ' ';
  request.raw.append(args);
  request.cmd = parse_command(split_ws(args));
  return request;
}

}  // namespace gpuperf::serve::binary
