// TCP front-end of the estimation service, built on the src/net epoll
// event loop: one I/O thread multiplexes every connection while request
// handling runs on the server's own worker pool (its own, not the
// session's — predict handlers block on micro-batcher futures that the
// session pool resolves, so sharing it could deadlock).
//
// Two framings share the port, sniffed from a connection's first byte:
// the newline/JSON line protocol (unchanged; every existing client
// works as before) and the length-prefixed binary protocol of
// serve/binary_protocol.hpp (first byte 0xB7, which no line request
// can start with).  Responses use the connection's framing; semantics
// — typed errors, admission control, graceful drain, shutdown verb —
// are identical in both.
//
// Per-connection flow: requests are parsed in batches on the loop
// thread (bounded per dispatch), handled in order on one worker task,
// and answered with a single write — FIFO per connection, so
// pipelining is safe in both framings.
//
// POSIX sockets only (the project targets Linux); loopback by default.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/limits.hpp"
#include "common/thread_pool.hpp"
#include "net/event_loop.hpp"
#include "serve/session.hpp"

namespace gpuperf::serve {

class TcpServer : private net::EventLoop::Handler {
 public:
  struct Options {
    /// 0 picks an ephemeral port; read the result from port().
    int port = 0;
    std::string bind_address = "127.0.0.1";
    /// Longest accepted request line.  A connection that exceeds it —
    /// with or without a newline — gets one typed "input_too_large"
    /// error response and is closed (docs/ROBUSTNESS.md).
    std::size_t max_line_bytes =
        InputLimits::defaults().max_request_line_bytes;
    /// Longest accepted binary-frame payload; enforced from the frame
    /// header before any payload is buffered.
    std::size_t max_frame_payload_bytes =
        InputLimits::defaults().max_frame_payload_bytes;
    /// Listen backlog (--backlog).
    int backlog = 128;
    /// Reap connections idle for this long (--idle-timeout-ms);
    /// 0 = never.  Reaps are counted as connections_idle_reaped.
    int idle_timeout_ms = 0;
    /// Slow-loris defense (--read-progress-timeout-ms): close a
    /// connection that drips a partial request without completing it
    /// within this window (counted as slow_loris_closed); distinct
    /// from the idle timer, which drip-fed bytes keep resetting.
    /// 0 = off.
    int read_progress_timeout_ms = 0;
    /// Per-connection output-buffer bound (--max-output-buffer): a
    /// peer that stops reading while responses accumulate past this
    /// many bytes is disconnected (backpressure_closed).  0 = off.
    std::size_t max_output_buffer = 8u << 20;
    /// Request-handling worker threads; 0 = hardware threads.
    std::size_t worker_threads = 0;
    /// Loop-level shed bound: heavy requests (predict/rank/analyze/dse)
    /// past this many dispatched-but-unanswered get an immediate
    /// `overloaded` response instead of queueing on the worker pool.
    /// Cheap verbs always pass, so the server stays observable.
    /// 0 = unbounded (the session's max_in_flight still applies).
    std::size_t max_pending = 0;
  };

  /// The session must outlive the server.
  TcpServer(ServeSession& session, Options options);
  explicit TcpServer(ServeSession& session)
      : TcpServer(session, Options()) {}
  ~TcpServer() override;

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + spawn the event loop; GP_CHECK-fails if the port
  /// is taken.
  void start();

  /// The bound port (valid after start()).
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// True once a client sent `shutdown` (the server keeps accepting
  /// until stop() — the owner decides when to wind down).
  bool stop_requested() const { return stop_requested_.load(); }

  /// Block until a shutdown request arrives or `timeout_ms` elapses
  /// (timeout_ms < 0 = forever).  Returns stop_requested().
  bool wait_for_stop(int timeout_ms = -1);

  /// Graceful drain (the SIGINT/SIGTERM path): close the listener so no
  /// new connections arrive, half-close every open connection for
  /// reading — in-flight requests still write their responses — and
  /// wait up to `timeout_ms` for the connections to finish.  Returns
  /// true when every connection drained in time.  Call stop() after to
  /// join the threads; stragglers are then cut off hard.
  bool drain(int timeout_ms);

  /// Stop the loop, join its thread, drain the worker pool.
  /// Idempotent; a stopped server can start() again.
  void stop();

 private:
  enum class Wire { kUnknown, kLine, kBinary };

  /// One parsed (or preformed) request in a dispatch batch; answered in
  /// order by a single worker task.
  struct WorkItem {
    Request request;
    std::uint8_t binary_verb = 0;  // wire id to echo (binary conns)
    bool heavy = false;
    /// Preformed response (shed / parse error): skip the session.
    bool preformed = false;
    Response response;
  };

  struct ConnState {
    Wire wire = Wire::kUnknown;
    bool closing = false;
  };

  // net::EventLoop::Handler (loop thread)
  bool on_data(net::ConnId id, net::Buffer& in) override;
  void on_close(net::ConnId id) override;

  void parse_batch(ConnState& state, net::Buffer& in,
                   std::vector<WorkItem>& batch);
  bool parse_line(ConnState& state, net::Buffer& in,
                  std::vector<WorkItem>& batch);
  bool parse_binary(ConnState& state, net::Buffer& in,
                    std::vector<WorkItem>& batch);
  void reject_oversized_line(ConnState& state, std::size_t observed,
                             std::vector<WorkItem>& batch);
  void admit(WorkItem& item);
  static std::string frame_response(Wire wire, const WorkItem& item,
                                    const Response& response);
  void dispatch(net::ConnId id, ConnState& state,
                std::vector<WorkItem> batch);
  void notify_stop_requested();
  void sync_loop_stats();

  ServeSession& session_;
  Options options_;
  InputLimits frame_limits_;  // defaults + max_frame_payload_bytes
  int port_ = 0;

  std::unique_ptr<net::EventLoop> loop_;
  std::thread loop_thread_;
  std::unique_ptr<ThreadPool> workers_;
  std::unordered_map<net::ConnId, ConnState> conn_state_;  // loop thread

  /// Heavy requests dispatched but not yet answered (the max_pending
  /// shed gauge; bumped on the loop thread, dropped by worker tasks).
  std::atomic<std::int64_t> pending_heavy_{0};
  std::atomic<std::uint64_t>* requests_line_ = nullptr;
  std::atomic<std::uint64_t>* requests_binary_ = nullptr;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace gpuperf::serve
