// TCP front-end of the estimation service: newline-delimited requests
// in, one JSON line out per request, connections stay open for
// pipelining.  One acceptor thread plus one lightweight thread per
// connection; the heavy lifting (DCA, prediction) happens on the
// session's worker pool via the micro-batcher, so connection threads
// mostly block on I/O.
//
// POSIX sockets only (the project targets Linux); loopback by default.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/limits.hpp"
#include "serve/session.hpp"

namespace gpuperf::serve {

class TcpServer {
 public:
  struct Options {
    /// 0 picks an ephemeral port; read the result from port().
    int port = 0;
    std::string bind_address = "127.0.0.1";
    /// Longest accepted request line.  A connection that exceeds it —
    /// with or without a newline — gets one typed "input_too_large"
    /// error response and is closed (docs/ROBUSTNESS.md).
    std::size_t max_line_bytes =
        InputLimits::defaults().max_request_line_bytes;
  };

  /// The session must outlive the server.
  TcpServer(ServeSession& session, Options options);
  explicit TcpServer(ServeSession& session)
      : TcpServer(session, Options()) {}
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + spawn the acceptor; GP_CHECK-fails if the port is
  /// taken.
  void start();

  /// The bound port (valid after start()).
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// True once a client sent `shutdown` (the server keeps accepting
  /// until stop() — the owner decides when to wind down).
  bool stop_requested() const { return stop_requested_.load(); }

  /// Block until a shutdown request arrives or `timeout_ms` elapses
  /// (timeout_ms < 0 = forever).  Returns stop_requested().
  bool wait_for_stop(int timeout_ms = -1);

  /// Graceful drain (the SIGINT/SIGTERM path): close the listener so no
  /// new connections arrive, half-close every open connection for
  /// reading — in-flight requests still write their responses — and
  /// wait up to `timeout_ms` for the connections to finish.  Returns
  /// true when every connection drained in time.  Call stop() after to
  /// join the threads; stragglers are then cut off hard.
  bool drain(int timeout_ms);

  /// Close the listener, unblock and join every connection thread.
  /// Idempotent; must not be called from a connection thread.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  ServeSession& session_;
  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::thread> connections_;
  std::set<int> open_fds_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stop_requested_{false};
};

}  // namespace gpuperf::serve
