#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"
#include "serve/errors.hpp"

namespace gpuperf::serve {

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(ServeSession& session, Options options)
    : session_(session), options_(std::move(options)) {
  GP_CHECK(options_.port >= 0 && options_.port <= 65535);
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  GP_CHECK_MSG(!running_.load(), "server already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  GP_CHECK_MSG(listen_fd_ >= 0, "socket() failed: " << std::strerror(errno));

  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  GP_CHECK_MSG(::inet_pton(AF_INET, options_.bind_address.c_str(),
                           &addr.sin_addr) == 1,
               "bad bind address '" << options_.bind_address << "'");

  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    GP_CHECK_MSG(false, "bind to " << options_.bind_address << ":"
                                   << options_.port
                                   << " failed: " << std::strerror(err));
  }
  GP_CHECK_MSG(::listen(listen_fd_, 64) == 0,
               "listen() failed: " << std::strerror(errno));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  GP_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                         &len) == 0);
  port_ = ntohs(bound.sin_port);

  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
  GP_LOG(kInfo) << "serve: listening on " << options_.bind_address << ":"
                << port_;
}

void TcpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    open_fds_.insert(fd);
    connections_.emplace_back(
        [this, fd] { serve_connection(fd); });
  }
}

void TcpServer::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool close_requested = false;
  const auto reject_oversized = [&](std::size_t observed) {
    session_.metrics().counter("inputs_rejected").fetch_add(1);
    const Response err = error_response(
        ErrorCode::kInputTooLarge,
        "request line of " + std::to_string(observed) +
            " bytes exceeds the " +
            std::to_string(options_.max_line_bytes) + "-byte limit");
    send_all(fd, err.body + "\n");
    close_requested = true;
  };
  while (!close_requested) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // client went away or stop() shut the socket down
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      if (nl - start > options_.max_line_bytes) {
        reject_oversized(nl - start);
        break;
      }
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty() || line == "\r") continue;
      const Response response = session_.handle(parse_request(line));
      if (!send_all(fd, response.body + "\n")) {
        close_requested = true;
        break;
      }
      if (response.shutdown_requested) {
        {
          std::lock_guard<std::mutex> lock(mutex_);
          stop_requested_.store(true);
        }
        cv_.notify_all();
        close_requested = true;
        break;
      }
    }
    buffer.erase(0, start);
    // A line still unterminated past the limit can never become valid;
    // reject it without buffering unbounded bytes.
    if (!close_requested && buffer.size() > options_.max_line_bytes)
      reject_oversized(buffer.size());
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    open_fds_.erase(fd);
  }
  cv_.notify_all();  // drain() waits for open_fds_ to empty
}

bool TcpServer::wait_for_stop(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto done = [this] {
    return stop_requested_.load() || stopping_.load();
  };
  if (timeout_ms < 0)
    cv_.wait(lock, done);
  else
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), done);
  return stop_requested_.load();
}

bool TcpServer::drain(int timeout_ms) {
  if (!running_.load()) return true;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true);  // racing accepts are closed immediately
  }
  cv_.notify_all();
  // Closing the listener stops new connections; the acceptor thread is
  // joined later by stop(), which tolerates the already-closed fd.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // SHUT_RD only: once a connection finishes the requests it already
  // read, its next recv returns 0 and the thread exits cleanly — while
  // the response for any request still in flight goes out intact.
  for (const int fd : open_fds_) ::shutdown(fd, SHUT_RD);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                      [this] { return open_fds_.empty(); });
}

void TcpServer::stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_.store(true);
  }
  cv_.notify_all();
  // Closing the listener pops the acceptor out of accept().
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  // Unblock connection reads, then join.
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) t.join();
}

}  // namespace gpuperf::serve
