#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "net/socket.hpp"
#include "serve/binary_protocol.hpp"
#include "serve/errors.hpp"

namespace gpuperf::serve {

namespace {

/// Verbs that go through admission control (mirrors the session's
/// classification: everything analysis-heavy; ping/stats/shutdown
/// always pass so the server stays observable and stoppable).
bool is_heavy_verb(const std::string& verb) {
  return verb == "predict" || verb == "rank" || verb == "analyze" ||
         verb == "dse";
}

/// Parse batch bound per dispatch: one worker task answers at most
/// this many pipelined requests with a single write.
constexpr std::size_t kMaxBatch = 64;

/// A loop heartbeat older than this marks the server not-ready: the
/// loop ticks at most every second, so several missed ticks mean it is
/// genuinely wedged, not just idle.
constexpr std::int64_t kHeartbeatStaleMs = 5000;

}  // namespace

TcpServer::TcpServer(ServeSession& session, Options options)
    : session_(session), options_(std::move(options)),
      frame_limits_(InputLimits::defaults()) {
  GP_CHECK(options_.port >= 0 && options_.port <= 65535);
  frame_limits_.max_frame_payload_bytes = options_.max_frame_payload_bytes;
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::start() {
  GP_CHECK_MSG(!running_.load(), "server already started");
  const int listen_fd = net::listen_tcp(options_.bind_address,
                                        options_.port, options_.backlog);
  port_ = net::bound_port(listen_fd);

  // Cache the per-protocol counter refs for lock-free bumps on the
  // loop thread (MetricsRegistry guarantees stable addresses).
  requests_line_ = &session_.metrics().counter("requests_line");
  requests_binary_ = &session_.metrics().counter("requests_binary");

  workers_ = std::make_unique<ThreadPool>(options_.worker_threads);
  net::EventLoop::Options loop_options;
  loop_options.idle_timeout_ms = options_.idle_timeout_ms;
  loop_options.read_progress_timeout_ms =
      options_.read_progress_timeout_ms;
  loop_options.max_output_buffer = options_.max_output_buffer;
  // Room for at least one whole oversized line (detection needs
  // limit + 1 buffered bytes) or binary frame, plus pipelining slack.
  loop_options.max_input_buffer = std::max<std::size_t>(
      {64u << 10, 2 * (options_.max_line_bytes + 2),
       2 * (options_.max_frame_payload_bytes + binary::kHeaderBytes)});
  // Cast here: the Handler base is private, so the conversion is only
  // accessible inside TcpServer members (not within make_unique).
  loop_ = std::make_unique<net::EventLoop>(
      listen_fd, static_cast<net::EventLoop::Handler&>(*this),
      loop_options);

  running_.store(true);
  loop_thread_ = std::thread([this] { loop_->run(); });
  session_.set_stats_hook([this] { sync_loop_stats(); });
  // Readiness reflects the loop: a stale watchdog heartbeat (the loop
  // wedged in a handler or a stalled syscall) or a graceful drain in
  // progress both report ready:false.
  net::EventLoop* loop = loop_.get();
  ServeSession::ReadyProbe probe;
  probe.loop_healthy = [loop] {
    const std::int64_t age = loop->heartbeat_age_ms();
    return age >= 0 && age < kHeartbeatStaleMs;
  };
  probe.draining = [loop] { return loop->draining(); };
  session_.set_ready_probe(std::move(probe));
  GP_LOG(kInfo) << "serve: listening on " << options_.bind_address << ":"
                << port_;
}

bool TcpServer::on_data(net::ConnId id, net::Buffer& in) {
  ConnState& state = conn_state_[id];
  if (state.closing) return false;
  // One batch in flight per connection: responses are written in
  // request order, so parsing resumes only once the batch is answered.
  if (loop_->in_flight(id) > 0) return true;
  if (state.wire == Wire::kUnknown) {
    if (in.empty()) return true;
    state.wire = static_cast<unsigned char>(in.view()[0]) == binary::kMagic
                     ? Wire::kBinary
                     : Wire::kLine;
  }

  std::vector<WorkItem> batch;
  parse_batch(state, in, batch);
  if (batch.empty()) return !state.closing;

  // Inline fast path: a lone ping is answered on the loop thread —
  // no dispatch round trip for the protocol's cheapest request.
  if (batch.size() == 1 && !batch[0].preformed && !state.closing &&
      batch[0].request.verb == "ping") {
    const Response response = session_.handle(batch[0].request);
    loop_->enqueue_output(id,
                          frame_response(state.wire, batch[0], response));
    return true;
  }

  dispatch(id, state, std::move(batch));
  return !state.closing;
}

void TcpServer::on_close(net::ConnId id) { conn_state_.erase(id); }

void TcpServer::parse_batch(ConnState& state, net::Buffer& in,
                            std::vector<WorkItem>& batch) {
  while (batch.size() < kMaxBatch && !state.closing) {
    const bool more = state.wire == Wire::kBinary
                          ? parse_binary(state, in, batch)
                          : parse_line(state, in, batch);
    if (!more) break;
  }
}

void TcpServer::reject_oversized_line(ConnState& state,
                                      std::size_t observed,
                                      std::vector<WorkItem>& batch) {
  session_.metrics().counter("inputs_rejected").fetch_add(1);
  WorkItem item;
  item.preformed = true;
  item.response = error_response(
      ErrorCode::kInputTooLarge,
      "request line of " + std::to_string(observed) +
          " bytes exceeds the " + std::to_string(options_.max_line_bytes) +
          "-byte limit");
  batch.push_back(std::move(item));
  state.closing = true;
}

bool TcpServer::parse_line(ConnState& state, net::Buffer& in,
                           std::vector<WorkItem>& batch) {
  const std::string_view view = in.view();
  const std::size_t nl = view.find('\n');
  if (nl == std::string_view::npos) {
    // A line already past the limit can never become valid; reject it
    // without buffering unbounded bytes.
    if (view.size() > options_.max_line_bytes)
      reject_oversized_line(state, view.size(), batch);
    return false;
  }
  if (nl > options_.max_line_bytes) {
    reject_oversized_line(state, nl, batch);
    return false;
  }
  std::string line(view.substr(0, nl));
  in.consume(nl + 1);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return true;  // blank keep-alive line
  requests_line_->fetch_add(1, std::memory_order_relaxed);
  WorkItem item;
  item.request = parse_request(line);
  item.heavy = is_heavy_verb(item.request.verb);
  admit(item);
  batch.push_back(std::move(item));
  return true;
}

bool TcpServer::parse_binary(ConnState& state, net::Buffer& in,
                             std::vector<WorkItem>& batch) {
  const binary::DecodeResult r =
      binary::decode_frame(in.view(), frame_limits_);
  if (r.status == binary::DecodeStatus::kNeedMore) return false;
  if (r.status == binary::DecodeStatus::kFrame) {
    requests_binary_->fetch_add(1, std::memory_order_relaxed);
    WorkItem item;
    item.request = binary::to_request(r.frame);
    item.binary_verb = static_cast<std::uint8_t>(r.frame.verb);
    item.heavy = is_heavy_verb(item.request.verb);
    admit(item);
    batch.push_back(std::move(item));
    in.consume(r.consumed);
    return true;
  }
  // Malformed frame: one typed error response, then close — a framing
  // error desynchronizes the stream, so it cannot be skipped over.
  const ErrorCode code = r.status == binary::DecodeStatus::kTooLarge
                             ? ErrorCode::kInputTooLarge
                             : ErrorCode::kInvalidRequest;
  if (code == ErrorCode::kInputTooLarge)
    session_.metrics().counter("inputs_rejected").fetch_add(1);
  WorkItem item;
  item.preformed = true;
  item.response = error_response(code, r.error);
  batch.push_back(std::move(item));
  state.closing = true;
  return false;
}

void TcpServer::admit(WorkItem& item) {
  if (item.preformed || !item.heavy || options_.max_pending == 0) return;
  if (pending_heavy_.load(std::memory_order_relaxed) <
      static_cast<std::int64_t>(options_.max_pending))
    return;
  session_.metrics().counter("shed_overloaded").fetch_add(1);
  item.preformed = true;
  item.response = error_response(
      ErrorCode::kOverloaded,
      "server queue at capacity (" +
          std::to_string(options_.max_pending) + " requests pending)",
      /*retry_after_ms=*/100);
}

std::string TcpServer::frame_response(Wire wire, const WorkItem& item,
                                      const Response& response) {
  if (wire == Wire::kBinary) {
    // Error frames for undecodable requests echo ping (the verb byte
    // never made it off the wire); everything else echoes the request.
    const binary::Verb verb =
        item.binary_verb != 0 ? static_cast<binary::Verb>(item.binary_verb)
                              : binary::Verb::kPing;
    return binary::encode_response(verb, response.ok, response.body);
  }
  return response.body + "\n";
}

void TcpServer::dispatch(net::ConnId id, ConnState& state,
                         std::vector<WorkItem> batch) {
  loop_->mark_dispatch(id);
  for (const WorkItem& item : batch)
    if (!item.preformed && item.heavy)
      pending_heavy_.fetch_add(1, std::memory_order_relaxed);
  const Wire wire = state.wire;
  const bool close_after = state.closing;
  net::EventLoop* loop = loop_.get();
  workers_->submit([this, loop, id, wire, close_after,
                    batch = std::move(batch)]() mutable {
    std::string out;
    bool close = close_after;
    for (WorkItem& item : batch) {
      const Response response = item.preformed
                                    ? std::move(item.response)
                                    : session_.handle(item.request);
      if (!item.preformed && item.heavy)
        pending_heavy_.fetch_sub(1, std::memory_order_relaxed);
      if (response.shutdown_requested) {
        notify_stop_requested();
        close = true;
      }
      out += frame_response(wire, item, response);
    }
    loop->send(id, std::move(out), /*completes_dispatch=*/true, close);
  });
}

void TcpServer::notify_stop_requested() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_.store(true);
  }
  cv_.notify_all();
}

void TcpServer::sync_loop_stats() {
  const net::LoopStats& s = loop_->stats();
  MetricsRegistry& m = session_.metrics();
  m.counter("connections_accepted").store(s.accepted.load());
  m.counter("connections_active").store(s.active.load());
  m.counter("connections_idle_reaped").store(s.idle_reaped.load());
  m.counter("epoll_wakeups").store(s.epoll_wakeups.load());
  m.counter("bytes_in").store(s.bytes_in.load());
  m.counter("bytes_out").store(s.bytes_out.load());
  m.counter("accept_emfile").store(s.accept_emfile.load());
  m.counter("slow_loris_closed").store(s.slow_loris_closed.load());
  m.counter("backpressure_closed").store(s.backpressure_closed.load());
  m.counter("loop_stalls").store(s.loop_stalls.load());
  m.counter("spare_fd_unavailable").store(s.spare_fd_unavailable.load());
}

bool TcpServer::wait_for_stop(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto done = [this] {
    return stop_requested_.load() || !running_.load();
  };
  if (timeout_ms < 0)
    cv_.wait(lock, done);
  else
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), done);
  return stop_requested_.load();
}

bool TcpServer::drain(int timeout_ms) {
  if (!running_.load()) return true;
  loop_->drain();
  return loop_->wait_connections_closed(timeout_ms);
}

void TcpServer::stop() {
  if (!running_.exchange(false)) return;
  // Unhook stats first: set_stats_hook blocks on any in-progress hook
  // call, so after this nothing can reach loop_ through the session.
  session_.set_stats_hook({});
  session_.set_ready_probe({});
  loop_->stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The pool destructor drains queued handler tasks; their send()
  // calls land in the stopped (but still live) loop's queue — dropped.
  workers_.reset();
  loop_.reset();
  conn_state_.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  cv_.notify_all();
}

}  // namespace gpuperf::serve
