#include "serve/errors.hpp"

namespace gpuperf::serve {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidRequest: return "invalid_request";
    case ErrorCode::kAnalysisTimeout: return "analysis_timeout";
    case ErrorCode::kAnalysisFailed: return "analysis_failed";
    case ErrorCode::kAnalysisCrashed: return "analysis_crashed";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kModelUnavailable: return "model_unavailable";
    case ErrorCode::kDegraded: return "degraded";
    case ErrorCode::kConstraintInfeasible: return "constraint_infeasible";
    case ErrorCode::kInputTooLarge: return "input_too_large";
  }
  return "analysis_failed";
}

Response error_response(ErrorCode code, const std::string& message,
                        std::int64_t retry_after_ms) {
  JsonWriter json;
  json.begin_object()
      .field("ok", false)
      .field("code", error_code_name(code))
      .field("error", std::string_view(message));
  if (retry_after_ms > 0) json.field("retry_after_ms", retry_after_ms);
  json.end_object();
  return Response{false, json.str(), false};
}

}  // namespace gpuperf::serve
