// Wire protocol of the gpuperf estimation service (docs/SERVER.md):
// newline-delimited requests in the CLI's word grammar
// ("predict resnet50v2 teslat4"), newline-delimited single-line JSON
// responses.  The command parser here is also the CLI's argv parser —
// one grammar, one implementation, shared tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gpuperf::serve {

/// Words split into positional arguments and --flags.
///
/// Grammar (fixes the historical argv parser, which silently swallowed
/// flag values that start with "--"):
///   --key=value   explicit form; value may contain anything, even "--"
///   --key value   value is the next word unless it starts with "--"
///   --key         bare flag; stored with an empty value
///   --            everything after a lone "--" is positional
struct ParsedCommand {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  bool has_flag(const std::string& key) const {
    return flags.count(key) > 0;
  }
  std::string flag_or(const std::string& key,
                      const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

ParsedCommand parse_command(const std::vector<std::string>& words);

/// One service request: the verb ("predict", "rank", "analyze",
/// "reload", "model_info", "stats", "ping", "shutdown") plus the
/// parsed remainder of the line.
struct Request {
  std::string verb;
  ParsedCommand cmd;
  std::string raw;  // the original line, for error messages
};

/// Split a request line on whitespace and parse it.  An empty or
/// all-whitespace line yields an empty verb.
Request parse_request(const std::string& line);

/// A serialized single-line JSON response plus the out-of-band
/// shutdown signal the server acts on.
struct Response {
  bool ok = false;
  std::string body;  // single-line JSON, no trailing newline
  bool shutdown_requested = false;
};

/// Untyped error (always carries code "invalid_request"); failures with
/// a richer classification use the ErrorCode overload in
/// serve/errors.hpp.
Response error_response(const std::string& message);

/// Minimal streaming JSON writer: enough of the format for the
/// protocol's flat-ish responses (objects, arrays, scalars), with
/// correct string escaping and non-finite doubles mapped to null.
/// Output never contains a newline, so one response is one line.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();

  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, bool value);

  /// A bare string element inside begin_array()/end_array().
  JsonWriter& value(std::string_view v);

  const std::string& str() const { return out_; }

 private:
  void comma();
  void key(std::string_view k);
  void scalar(std::string_view text);

  std::string out_;
  bool need_comma_ = false;
};

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

}  // namespace gpuperf::serve
