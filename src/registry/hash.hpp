// Content hashing for registry artifacts: FNV-1a 64-bit over text, plus
// the fixed-width hex spelling used in manifests and feature-store file
// names.  Not cryptographic — the registry guards against corruption
// and schema drift, not adversaries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gpuperf::registry {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a64(std::string_view s,
                                std::uint64_t h = kFnvOffset) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// 16 lowercase hex digits, zero-padded.
std::string hex64(std::uint64_t value);

/// Inverse of hex64; GP_CHECK-fails on anything but 1–16 hex digits.
std::uint64_t parse_hex64(std::string_view s);

}  // namespace gpuperf::registry
