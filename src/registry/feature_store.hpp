// Persistent DCA feature store: the expensive half of a prediction
// (static analysis + PTX codegen + sliced symbolic execution) cached
// *across processes*.  A restarted server warm-starts from here and
// never re-runs slicing/symexec for a model it has seen before.
//
// Entries are content-addressed by the hash of the CNN's canonical
// text serialization (cnn::serialize_model): the same architecture maps
// to the same address regardless of its zoo name, and any topology edit
// gets a fresh address.  The paper's DCA features (executed
// instructions, trainable parameters) are device-independent, so one
// entry serves every device; device features join the vector at
// feature_vector() time.
//
// Durability (docs/FILE_FORMATS.md "Feature-store journal"): one
// append-only journal file ("store.journal") of length-prefixed,
// CRC-32-checked records, last-writer-wins per topology.  A record is
//
//   "GPFR" | u32 LE payload length | u32 LE crc32(payload) | payload
//
// where the payload is the line-oriented "gpuperf-features v1" text.
// On open the journal is replayed; the first torn, corrupt or
// oversized record marks the recovery point and the tail beyond it is
// truncated away (a crash mid-append can only ever damage the tail).
// Each put appends one record and fsyncs, so acknowledged entries
// survive power loss.  Legacy one-file-per-entry "<hex>.features"
// stores migrate into the journal on open.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cnn/model.hpp"
#include "common/limits.hpp"
#include "core/features.hpp"

namespace gpuperf::registry {

class FeatureStore {
 public:
  /// Opens (creating directories as needed) the store at `root`,
  /// replays the journal (truncating any torn tail), and migrates
  /// legacy "<hex>.features" entries into the journal.
  explicit FeatureStore(std::string root,
                        const InputLimits& limits = InputLimits::defaults());

  const std::string& root() const { return root_; }

  /// Path of the journal file inside `root`.
  std::string journal_path() const;

  /// Content address of a CNN topology.
  static std::uint64_t topology_hash(const cnn::Model& model);

  /// nullptr on miss — including a topology whose on-disk record was
  /// corrupt at open time (never throws for bad on-disk data).
  std::shared_ptr<const core::ModelFeatures> get(
      std::uint64_t topology) const;

  /// Append one record to the journal and fsync it; overwrites any
  /// previous entry at this address (last writer wins on replay).
  void put(std::uint64_t topology, const core::ModelFeatures& features);

  /// Number of distinct live entries.
  std::size_t size() const;

  /// Rewrite the journal with only the live (last-writer) records,
  /// atomically (temp + fsync + rename).  Reclaims space taken by
  /// overwritten records and truncated garbage.
  void compact();

  // ---- recovery telemetry (serve exposes these in `stats`) ----------
  /// Valid records recovered by the replay at open time.
  std::size_t recovered_records() const { return recovered_records_; }
  /// Bytes of torn/corrupt tail truncated away at open time.
  std::size_t torn_tail_bytes() const { return torn_tail_bytes_; }
  /// Legacy "<hex>.features" files migrated into the journal at open.
  std::size_t migrated_entries() const { return migrated_entries_; }

  /// Scan of every valid entry, for warm-starting the degraded-path
  /// imputation (docs/ROBUSTNESS.md): corrupt entries were already
  /// dropped at open, so this never throws for bad on-disk data.
  struct Aggregate {
    std::uint64_t entries = 0;
    std::int64_t executed_instruction_sum = 0;
    std::int64_t trainable_param_sum = 0;
  };
  Aggregate aggregate() const;

 private:
  void replay_journal();
  void migrate_legacy_entries();
  void append_record(const std::string& payload) const;

  std::string root_;
  InputLimits limits_;  // by value: the store outlives any caller's copy
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t,
                     std::shared_ptr<const core::ModelFeatures>>
      index_;
  std::size_t recovered_records_ = 0;
  std::size_t torn_tail_bytes_ = 0;
  std::size_t migrated_entries_ = 0;
};

}  // namespace gpuperf::registry
