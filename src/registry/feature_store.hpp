// Persistent DCA feature store: the expensive half of a prediction
// (static analysis + PTX codegen + sliced symbolic execution) cached
// *across processes*.  A restarted server warm-starts from here and
// never re-runs slicing/symexec for a model it has seen before.
//
// Entries are content-addressed by the hash of the CNN's canonical
// text serialization (cnn::serialize_model): the same architecture maps
// to the same file regardless of its zoo name, and any topology edit
// gets a fresh address.  The paper's DCA features (executed
// instructions, trainable parameters) are device-independent, so one
// entry serves every device; device features join the vector at
// feature_vector() time.
//
// One file per entry ("<hex>.features"), line-oriented, checksummed.
// A corrupt or mismatched entry reads as a miss — callers recompute and
// overwrite, so the store is self-healing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cnn/model.hpp"
#include "core/features.hpp"

namespace gpuperf::registry {

class FeatureStore {
 public:
  /// Opens (creating directories as needed) the store at `root`.
  explicit FeatureStore(std::string root);

  const std::string& root() const { return root_; }

  /// Content address of a CNN topology.
  static std::uint64_t topology_hash(const cnn::Model& model);

  /// nullptr on miss — including a corrupt, truncated or
  /// wrong-topology entry (never throws for bad on-disk data).
  std::shared_ptr<const core::ModelFeatures> get(
      std::uint64_t topology) const;

  /// Atomically persist (write temp + rename, overwriting any previous
  /// entry at this address).
  void put(std::uint64_t topology, const core::ModelFeatures& features);

  /// Number of entries on disk.
  std::size_t size() const;

  /// Scan of every valid entry, for warm-starting the degraded-path
  /// imputation (docs/ROBUSTNESS.md): corrupt entries are skipped, so
  /// this never throws for bad on-disk data.
  struct Aggregate {
    std::uint64_t entries = 0;
    std::int64_t executed_instruction_sum = 0;
    std::int64_t trainable_param_sum = 0;
  };
  Aggregate aggregate() const;

 private:
  std::string entry_path(std::uint64_t topology) const;

  std::string root_;
};

}  // namespace gpuperf::registry
