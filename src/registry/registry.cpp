#include "registry/registry.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/strings.hpp"
#include "ml/model_io.hpp"
#include "registry/hash.hpp"

namespace fs = std::filesystem;

namespace gpuperf::registry {

namespace {

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  GP_CHECK_MSG(in.good(), "cannot open '" << path.string() << "'");
  std::ostringstream os;
  os << in.rdbuf();
  GP_CHECK_MSG(!in.bad(), "read of '" << path.string() << "' failed");
  return os.str();
}

/// Durable write: the data reaches the disk before this returns, so a
/// subsequent rename publishes a complete file or nothing.
void write_file_synced(const fs::path& path, const std::string& content) {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    GP_CHECK_MSG(out.good(),
                 "cannot open '" << path.string() << "' for writing");
    out << content;
    out.flush();
    GP_CHECK_MSG(out.good(), "write to '" << path.string() << "' failed");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  GP_CHECK_MSG(fd >= 0, "cannot reopen '" << path.string() << "' to sync");
  const int rc = ::fsync(fd);
  ::close(fd);
  GP_CHECK_MSG(rc == 0, "fsync of '" << path.string() << "' failed");
}

/// fsync a directory so a rename inside it is durable.
void sync_dir(const fs::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort on exotic filesystems
  ::fsync(fd);
  ::close(fd);
}

bool is_version_name(const std::string& name) {
  if (name.size() != 5 || name[0] != 'v') return false;
  return std::all_of(name.begin() + 1, name.end(),
                     [](char c) { return c >= '0' && c <= '9'; });
}

std::string version_name(int number) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "v%04d", number);
  return buf;
}

}  // namespace

ModelRegistry::ModelRegistry(std::string root) : root_(std::move(root)) {
  GP_CHECK_MSG(!root_.empty(), "registry root must not be empty");
  fs::create_directories(root_);

  // Sweep the leavings of interrupted publishes: staged bundles that
  // never got renamed into place and a LATEST.tmp that never replaced
  // LATEST.  Both are invisible to readers and safe to delete.
  std::error_code ec;
  std::vector<fs::path> stale;
  for (const auto& entry : fs::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (starts_with(name, ".staging-") || name == "LATEST.tmp")
      stale.push_back(entry.path());
  }
  for (const auto& path : stale) fs::remove_all(path, ec);

  repair_latest();
}

std::string ModelRegistry::version_dir(const std::string& version) const {
  return (fs::path(root_) / version).string();
}

std::vector<std::string> ModelRegistry::versions() const {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (is_version_name(name)) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ModelRegistry::latest_version() const {
  GPUPERF_FAULT_POINT("registry.latest");  // dead volume / unreadable
  const fs::path pointer = fs::path(root_) / "LATEST";
  if (!fs::exists(pointer)) return "";
  const std::string name = std::string(trim(read_file(pointer)));
  GP_CHECK_MSG(is_version_name(name),
               "corrupt LATEST pointer: '" << name << "'");
  return name;
}

Manifest ModelRegistry::manifest(const std::string& version) const {
  const fs::path dir = version_dir(version);
  GP_CHECK_MSG(fs::is_directory(dir),
               "no bundle '" << version << "' in " << root_);
  return deserialize_manifest(read_file(dir / "MANIFEST"));
}

std::string ModelRegistry::publish(
    const core::PerformanceEstimator& estimator, Manifest manifest,
    PublishOptions options) {
  GP_CHECK_MSG(estimator.is_trained(), "publish of an untrained estimator");

  // Gate against the live bundle before writing anything.
  const std::string live = latest_version();
  if (!live.empty() && !options.force && manifest.cv_folds > 0) {
    const Manifest live_manifest = this->manifest(live);
    if (live_manifest.cv_folds > 0) {
      GP_CHECK_MSG(
          manifest.cv_mape <=
              live_manifest.cv_mape + options.max_mape_regression,
          "publish gate: CV MAPE " << manifest.cv_mape
              << "% regresses past live bundle " << live << " ("
              << live_manifest.cv_mape << "%) by more than "
              << options.max_mape_regression
              << " points; pass force to override");
    }
  }

  // Stamp the machine-owned manifest fields.
  const std::string model_text =
      ml::serialize_regressor(estimator.model());
  manifest.schema_version = 1;
  manifest.regressor_id = estimator.regressor_id();
  manifest.feature_schema_hash =
      feature_schema_hash(core::FeatureExtractor::feature_names());
  manifest.n_features = core::FeatureExtractor::feature_names().size();
  manifest.model_file = "model.txt";
  manifest.model_checksum = fnv1a64(model_text);

  const std::vector<std::string> existing = versions();
  const int next =
      existing.empty()
          ? 1
          : static_cast<int>(parse_int(existing.back().substr(1))) + 1;
  const std::string version = version_name(next);

  // Stage, sync, rename: readers either see the whole bundle or none.
  const fs::path root(root_);
  const fs::path staging = root / (".staging-" + version);
  fs::remove_all(staging);
  fs::create_directories(staging);
  write_file_synced(staging / manifest.model_file, model_text);
  write_file_synced(staging / "MANIFEST", serialize_manifest(manifest));
  sync_dir(staging);
  fs::rename(staging, root / version);
  sync_dir(root);

  set_latest(version);
  return version;
}

void ModelRegistry::set_latest(const std::string& version) {
  GP_CHECK_MSG(is_version_name(version),
               "bad version name '" << version << "'");
  GP_CHECK_MSG(fs::is_directory(version_dir(version)),
               "no bundle '" << version << "' in " << root_);
  const fs::path root(root_);
  const fs::path tmp = root / "LATEST.tmp";
  write_file_synced(tmp, version + "\n");
  fs::rename(tmp, root / "LATEST");
  sync_dir(root);
}

void ModelRegistry::quarantine(const std::string& version) {
  std::error_code ec;
  const fs::path qdir = fs::path(root_) / "quarantine";
  fs::create_directories(qdir, ec);
  fs::path dest = qdir / version;
  for (int i = 1; fs::exists(dest, ec); ++i)
    dest = qdir / (version + "-" + std::to_string(i));
  fs::rename(version_dir(version), dest, ec);
  if (!ec) {
    quarantined_.fetch_add(1);
    sync_dir(fs::path(root_));
    // If LATEST pointed at the bundle just moved aside it now dangles;
    // re-point it at the newest remaining good version immediately so
    // no reader ever resolves a pointer into the quarantine.
    repair_latest();
  }
}

void ModelRegistry::repair_latest() {
  const fs::path pointer = fs::path(root_) / "LATEST";
  // A healthy pointer is left alone — even when newer versions exist,
  // because an operator rollback must survive a restart.
  if (fs::exists(pointer)) {
    try {
      const std::string name = std::string(trim(read_file(pointer)));
      if (is_version_name(name) && fs::is_directory(version_dir(name)))
        return;
    } catch (const CheckError&) {
      // unreadable pointer: fall through and re-point it
    }
  } else if (versions().empty()) {
    return;  // nothing published yet
  }

  // Re-point at the newest version whose manifest parses.
  const std::vector<std::string> all = versions();
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    try {
      (void)manifest(*it);
      set_latest(*it);
      return;
    } catch (const CheckError&) {
      continue;
    }
  }
  std::error_code ec;
  fs::remove(pointer, ec);  // no valid version left to point at
}

Bundle ModelRegistry::load_verified(const std::string& target) {
  const fs::path dir = version_dir(target);
  GP_CHECK_MSG(fs::is_directory(dir),
               "no bundle '" << target << "' in " << root_);

  Manifest m;
  try {
    m = deserialize_manifest(read_file(dir / "MANIFEST"));
  } catch (const CheckError& e) {
    quarantine(target);
    throw BundleCorruptError("bundle " + target +
                             " has a corrupt manifest: " + e.what());
  }

  // An incompatible schema is a build problem, not disk damage — the
  // bundle stays where it is.
  GP_CHECK_MSG(
      m.feature_schema_hash ==
          feature_schema_hash(core::FeatureExtractor::feature_names()),
      "bundle " << target << " was trained on a different feature schema");

  GPUPERF_FAULT_POINT("registry.load");
  std::string model_text;
  try {
    model_text = read_file(dir / m.model_file);
  } catch (const CheckError& e) {
    quarantine(target);
    throw BundleCorruptError("bundle " + target +
                             " model file unreadable: " + e.what());
  }
  const bool disk_matches = fnv1a64(model_text) == m.model_checksum;
  // A corrupted bundle read: one flipped byte must trip the checksum
  // gate below, never install a silently wrong model.
  if (GPUPERF_FAULT_CORRUPT("registry.load") && !model_text.empty())
    model_text[0] ^= 0x01;
  if (fnv1a64(model_text) != m.model_checksum) {
    // Quarantine only durable damage.  When the bytes on disk verify
    // but the in-memory copy doesn't (a transient read fault), the
    // bundle is fine — fail this load and leave it in place.
    if (!disk_matches) quarantine(target);
    const std::string msg = "bundle " + target +
                            " model checksum mismatch — " + m.model_file +
                            " is corrupt";
    if (!disk_matches) throw BundleCorruptError(msg);
    GP_CHECK_MSG(false, msg);
  }

  ml::LoadedRegressor loaded;
  try {
    loaded = ml::deserialize_regressor(model_text);
  } catch (const CheckError& e) {
    quarantine(target);
    throw BundleCorruptError("bundle " + target +
                             " model is unparsable: " + e.what());
  }
  if (loaded.id != m.regressor_id) {
    quarantine(target);
    throw BundleCorruptError("bundle " + target + " manifest says '" +
                             m.regressor_id +
                             "' but the model file holds '" + loaded.id +
                             "'");
  }
  return Bundle{target, m,
                core::PerformanceEstimator::adopt(std::move(loaded.id),
                                                  std::move(loaded.model))};
}

Bundle ModelRegistry::load(const std::string& version) {
  if (!version.empty()) return load_verified(version);

  // LATEST load: a corrupt live bundle is quarantined by
  // load_verified, after which the pointer is repaired and the newest
  // remaining good version serves instead.  Each fallback round
  // removes a bundle, so the loop is bounded.
  const std::size_t max_attempts = versions().size() + 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    std::string target;
    try {
      target = latest_version();
    } catch (const CheckError&) {
      repair_latest();
      target = latest_version();
    }
    GP_CHECK_MSG(!target.empty(), "registry " << root_ << " is empty");
    try {
      return load_verified(target);
    } catch (const BundleCorruptError&) {
      repair_latest();
      if (versions().empty()) throw;
    }
  }
  throw BundleCorruptError("registry " + root_ + " has no loadable bundle");
}

}  // namespace gpuperf::registry
