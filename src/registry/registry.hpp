// Versioned on-disk store for trained estimators — the "train once,
// predict anywhere" half of the paper's T_est = t_dca + n·t_pm speedup
// argument made durable: a trained regressor is a shipped artifact
// (bundle), not process state.
//
// Layout:
//   <root>/
//     v0001/              one immutable bundle per version
//       MANIFEST          registry::Manifest (schema, metrics, checksum)
//       model.txt         ml::serialize_regressor output
//     v0002/ ...
//     LATEST              name of the live version ("v0002")
//
// Publishing is atomic: the bundle is staged in a dot-directory,
// fsynced, renamed into place, and only then does LATEST move (itself
// via write-temp + rename).  Readers therefore never observe a partial
// bundle, and a crashed publisher leaves only an ignorable .staging
// directory.  Publishing is also *gated*: a bundle whose CV MAPE
// regresses past the live bundle's by more than the configured margin
// is refused unless forced.
#pragma once

#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "registry/manifest.hpp"

namespace gpuperf::registry {

struct PublishOptions {
  /// Maximum tolerated CV-MAPE regression, in percentage points over
  /// the live bundle (new_mape <= live_mape + margin).  Only enforced
  /// when both bundles carry CV metrics.
  double max_mape_regression = 1.0;
  /// Publish even past the gate (records the metrics regardless).
  bool force = false;
};

/// A verified, loaded bundle.
struct Bundle {
  std::string version;
  Manifest manifest;
  core::PerformanceEstimator estimator;
};

class ModelRegistry {
 public:
  /// Opens (creating directories as needed) the registry at `root`.
  explicit ModelRegistry(std::string root);

  const std::string& root() const { return root_; }

  /// All published versions, ascending ("v0001", "v0002", ...).
  std::vector<std::string> versions() const;

  /// The LATEST pointer's target; empty string when nothing is
  /// published yet.
  std::string latest_version() const;
  bool empty() const { return latest_version().empty(); }

  /// Atomically publish a trained estimator under the next version and
  /// advance LATEST.  The caller fills the manifest's provenance and CV
  /// fields; schema hash, feature count, model file and checksum are
  /// stamped here.  Returns the new version name.  GP_CHECK-fails when
  /// the gate refuses (see PublishOptions) — nothing is written in
  /// that case.
  std::string publish(const core::PerformanceEstimator& estimator,
                      Manifest manifest, PublishOptions options = {});

  /// Parse one bundle's manifest without loading the model.
  Manifest manifest(const std::string& version) const;

  /// Load + verify a bundle; empty version means LATEST.  GP_CHECK-
  /// fails on a missing version, checksum mismatch, malformed manifest
  /// or model, or a feature schema differing from this build's
  /// FeatureExtractor.
  Bundle load(const std::string& version = "") const;

  /// Point LATEST at an existing version — rollback (or roll-forward).
  void set_latest(const std::string& version);

 private:
  std::string version_dir(const std::string& version) const;

  std::string root_;
};

}  // namespace gpuperf::registry
