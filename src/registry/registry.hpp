// Versioned on-disk store for trained estimators — the "train once,
// predict anywhere" half of the paper's T_est = t_dca + n·t_pm speedup
// argument made durable: a trained regressor is a shipped artifact
// (bundle), not process state.
//
// Layout:
//   <root>/
//     v0001/              one immutable bundle per version
//       MANIFEST          registry::Manifest (schema, metrics, checksum)
//       model.txt         ml::serialize_regressor output
//     v0002/ ...
//     LATEST              name of the live version ("v0002")
//
// Publishing is atomic: the bundle is staged in a dot-directory,
// fsynced, renamed into place, and only then does LATEST move (itself
// via write-temp + rename).  Readers therefore never observe a partial
// bundle, and a crashed publisher leaves only an ignorable .staging
// directory.  Publishing is also *gated*: a bundle whose CV MAPE
// regresses past the live bundle's by more than the configured margin
// is refused unless forced.
// Durability (docs/ROBUSTNESS.md "Registry recovery"): opening the
// registry sweeps stale .staging-* directories and repairs a missing,
// corrupt or dangling LATEST pointer (an interrupted publish can leave
// any of those behind).  Loading a corrupt bundle — unreadable or
// unparsable manifest, missing model file, checksum mismatch, model/
// manifest disagreement — moves the bundle to quarantine/ instead of
// leaving the damage in the version list; a LATEST load then falls
// back to the newest remaining good version rather than failing to
// serve.  An explicitly-requested version is never silently
// substituted: it quarantines and throws.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "core/estimator.hpp"
#include "registry/manifest.hpp"

namespace gpuperf::registry {

/// A bundle whose on-disk bytes are damaged (vs. merely incompatible:
/// a feature-schema mismatch is a build issue and is NOT this).  The
/// bundle has already been moved to quarantine/ when this is thrown.
class BundleCorruptError : public CheckError {
 public:
  explicit BundleCorruptError(const std::string& what) : CheckError(what) {}
};

struct PublishOptions {
  /// Maximum tolerated CV-MAPE regression, in percentage points over
  /// the live bundle (new_mape <= live_mape + margin).  Only enforced
  /// when both bundles carry CV metrics.
  double max_mape_regression = 1.0;
  /// Publish even past the gate (records the metrics regardless).
  bool force = false;
};

/// A verified, loaded bundle.
struct Bundle {
  std::string version;
  Manifest manifest;
  core::PerformanceEstimator estimator;
};

class ModelRegistry {
 public:
  /// Opens (creating directories as needed) the registry at `root`,
  /// sweeps stale .staging-* leftovers of interrupted publishes, and
  /// repairs the LATEST pointer if an interrupted publish or bit rot
  /// left it missing, unparsable, or pointing at a missing bundle.
  explicit ModelRegistry(std::string root);

  const std::string& root() const { return root_; }

  /// All published versions, ascending ("v0001", "v0002", ...).
  std::vector<std::string> versions() const;

  /// The LATEST pointer's target; empty string when nothing is
  /// published yet.
  std::string latest_version() const;
  bool empty() const { return latest_version().empty(); }

  /// Atomically publish a trained estimator under the next version and
  /// advance LATEST.  The caller fills the manifest's provenance and CV
  /// fields; schema hash, feature count, model file and checksum are
  /// stamped here.  Returns the new version name.  GP_CHECK-fails when
  /// the gate refuses (see PublishOptions) — nothing is written in
  /// that case.
  std::string publish(const core::PerformanceEstimator& estimator,
                      Manifest manifest, PublishOptions options = {});

  /// Parse one bundle's manifest without loading the model.
  Manifest manifest(const std::string& version) const;

  /// Load + verify a bundle; empty version means LATEST.
  ///
  /// A corrupt bundle (unreadable/unparsable manifest, missing model
  /// file, checksum mismatch, model/manifest disagreement) is moved to
  /// quarantine/.  Loading an explicit version then throws
  /// BundleCorruptError; loading LATEST repairs the pointer and falls
  /// back to the newest remaining good version, throwing only when no
  /// good version is left.  A feature schema differing from this
  /// build's FeatureExtractor throws (CheckError) without quarantining
  /// — the bytes are fine, the build is incompatible.
  Bundle load(const std::string& version = "");

  /// Point LATEST at an existing version — rollback (or roll-forward).
  void set_latest(const std::string& version);

  /// Re-point LATEST at the newest version with a parsable manifest
  /// (removing the pointer if none is left).  Called on open; exposed
  /// so operators/tests can force a repair after manual surgery.
  void repair_latest();

  /// Bundles moved to quarantine/ by this instance.
  std::size_t quarantined_total() const { return quarantined_.load(); }

 private:
  std::string version_dir(const std::string& version) const;
  /// Move a damaged bundle into quarantine/ (never throws; best
  /// effort — a bundle that cannot even be moved is left in place).
  void quarantine(const std::string& version);
  /// Load + verify one concrete version; quarantines and throws
  /// BundleCorruptError on damaged bytes.
  Bundle load_verified(const std::string& version);

  std::string root_;
  std::atomic<std::size_t> quarantined_{0};
};

}  // namespace gpuperf::registry
