#include "registry/feature_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "cnn/model_io.hpp"
#include "common/check.hpp"
#include "common/crc32.hpp"
#include "common/fault.hpp"
#include "common/strings.hpp"
#include "registry/hash.hpp"

namespace fs = std::filesystem;

namespace gpuperf::registry {

namespace {

constexpr char kRecordMagic[4] = {'G', 'P', 'F', 'R'};
constexpr std::size_t kRecordHeaderBytes = 12;  // magic + length + crc

std::string full_precision(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// The journal record payload: line-oriented and human-readable, like
/// every other format in the repo.  Integrity lives in the record's
/// CRC-32, not in the payload.
std::string entry_body(std::uint64_t topology,
                       const core::ModelFeatures& f) {
  std::ostringstream os;
  os << "gpuperf-features v1\n";
  os << "topology " << hex64(topology) << "\n";
  os << "model " << f.model_name << "\n";
  os << "executed_instructions " << f.executed_instructions << "\n";
  os << "trainable_params " << f.trainable_params << "\n";
  os << "macs " << f.macs << "\n";
  os << "neurons " << f.neurons << "\n";
  os << "weighted_layers " << f.weighted_layers << "\n";
  os << "dca_seconds " << full_precision(f.dca_seconds) << "\n";
  return os.str();
}

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

std::uint32_t get_u32_le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]))
          << 24);
}

std::string encode_record(const std::string& payload) {
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size());
  out.append(kRecordMagic, sizeof(kRecordMagic));
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32_le(out, crc32(payload));
  out.append(payload);
  return out;
}

/// Parse a "gpuperf-features v1" payload into (topology, features);
/// nullopt on anything malformed.
std::optional<
    std::pair<std::uint64_t, std::shared_ptr<core::ModelFeatures>>>
parse_body(const std::string& body) {
  auto out = std::make_shared<core::ModelFeatures>();
  std::uint64_t topology = 0;
  bool have_topology = false;
  try {
    std::istringstream is(body);
    std::string line;
    if (!std::getline(is, line) || trim(line) != "gpuperf-features v1")
      return std::nullopt;
    while (std::getline(is, line)) {
      if (trim(line).empty()) continue;
      const auto kv = split_ws(line);
      if (kv.size() != 2) return std::nullopt;
      if (kv[0] == "topology") {
        topology = parse_hex64(kv[1]);
        have_topology = true;
      } else if (kv[0] == "model") {
        out->model_name = kv[1];
      } else if (kv[0] == "executed_instructions") {
        out->executed_instructions = parse_int(kv[1]);
      } else if (kv[0] == "trainable_params") {
        out->trainable_params = parse_int(kv[1]);
      } else if (kv[0] == "macs") {
        out->macs = parse_int(kv[1]);
      } else if (kv[0] == "neurons") {
        out->neurons = parse_int(kv[1]);
      } else if (kv[0] == "weighted_layers") {
        out->weighted_layers = parse_int(kv[1]);
      } else if (kv[0] == "dca_seconds") {
        out->dca_seconds = parse_double(kv[1]);
      } else {
        return std::nullopt;
      }
    }
  } catch (const CheckError&) {
    return std::nullopt;  // unparsable numbers
  }
  if (!have_topology) return std::nullopt;
  return std::make_pair(topology, std::move(out));
}

/// Parse a legacy one-file-per-entry "<hex>.features" body (payload
/// followed by a trailing "checksum <fnv1a64>" line).
std::optional<
    std::pair<std::uint64_t, std::shared_ptr<core::ModelFeatures>>>
parse_legacy_entry(const std::string& text) {
  const std::size_t marker = text.rfind("checksum ");
  if (marker == std::string::npos ||
      (marker > 0 && text[marker - 1] != '\n'))
    return std::nullopt;
  const std::string body = text.substr(0, marker);
  const auto parts = split_ws(std::string(trim(text.substr(marker))));
  std::uint64_t stored_checksum = 0;
  try {
    if (parts.size() != 2 || parts[0] != "checksum") return std::nullopt;
    stored_checksum = parse_hex64(parts[1]);
  } catch (const CheckError&) {
    return std::nullopt;
  }
  if (stored_checksum != fnv1a64(body)) return std::nullopt;
  return parse_body(body);
}

}  // namespace

FeatureStore::FeatureStore(std::string root, const InputLimits& limits)
    : root_(std::move(root)), limits_(limits) {
  GP_CHECK_MSG(!root_.empty(), "feature store root must not be empty");
  fs::create_directories(root_);
  replay_journal();
  migrate_legacy_entries();
}

std::string FeatureStore::journal_path() const {
  return (fs::path(root_) / "store.journal").string();
}

std::uint64_t FeatureStore::topology_hash(const cnn::Model& model) {
  return fnv1a64(cnn::serialize_model(model));
}

void FeatureStore::replay_journal() {
  std::ifstream in(journal_path(), std::ios::binary);
  if (!in.good()) return;  // no journal yet

  std::size_t offset = 0;       // start of the record being read
  std::size_t valid_end = 0;    // end of the last fully-valid record
  char header[kRecordHeaderBytes];
  std::string payload;
  bool corrupt = false;

  while (in.read(header, kRecordHeaderBytes)) {
    if (std::string_view(header, 4) !=
        std::string_view(kRecordMagic, 4)) {
      corrupt = true;
      break;
    }
    const std::uint32_t length = get_u32_le(header + 4);
    const std::uint32_t stored_crc = get_u32_le(header + 8);
    if (length == 0 || length > limits_.max_store_record_bytes) {
      corrupt = true;
      break;
    }
    payload.resize(length);
    if (!in.read(payload.data(), length)) break;  // torn tail
    if (crc32(payload) != stored_crc) {
      corrupt = true;
      break;
    }
    auto parsed = parse_body(payload);
    if (!parsed) {
      corrupt = true;
      break;
    }
    index_[parsed->first] = std::move(parsed->second);
    ++recovered_records_;
    offset += kRecordHeaderBytes + length;
    valid_end = offset;
  }
  in.close();

  // A short read (torn tail) or a failed check (bit rot) both truncate
  // back to the last fully-valid record; everything before it is intact
  // because records are append-only.
  std::error_code ec;
  const auto file_size = fs::file_size(journal_path(), ec);
  if (!ec && file_size > valid_end) {
    torn_tail_bytes_ = static_cast<std::size_t>(file_size) - valid_end;
    fs::resize_file(journal_path(), valid_end, ec);
  }
  (void)corrupt;
}

void FeatureStore::migrate_legacy_entries() {
  std::vector<fs::path> migrated;
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file() ||
        !ends_with(entry.path().filename().string(), ".features"))
      continue;
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in.good()) continue;
    std::ostringstream os;
    os << in.rdbuf();
    const auto parsed = parse_legacy_entry(os.str());
    if (!parsed) continue;  // corrupt legacy entry: leave it in place
    if (index_.find(parsed->first) == index_.end()) {
      append_record(entry_body(parsed->first, *parsed->second));
      index_[parsed->first] = parsed->second;
    }
    migrated.push_back(entry.path());
    ++migrated_entries_;
  }
  std::error_code ec;
  for (const auto& path : migrated) fs::remove(path, ec);
}

std::shared_ptr<const core::ModelFeatures> FeatureStore::get(
    std::uint64_t topology) const {
  GPUPERF_FAULT_POINT("store.get");  // a dead volume: read throws
  if (GPUPERF_FAULT_CORRUPT("store.get")) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(topology);
  return it == index_.end() ? nullptr : it->second;
}

void FeatureStore::append_record(const std::string& payload) const {
  enforce_limit(payload.size(), limits_.max_store_record_bytes,
                "feature-store record bytes");
  const std::string record = encode_record(payload);
  const int fd = ::open(journal_path().c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  GP_CHECK_MSG(fd >= 0, "cannot open journal '" << journal_path() << "'");
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n =
        ::write(fd, record.data() + written, record.size() - written);
    if (n < 0) {
      ::close(fd);
      GP_CHECK_MSG(false, "journal append to '" << journal_path()
                                                << "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before acknowledging: a put that returned must survive a
  // crash (the record is either fully there or becomes the torn tail).
  const int rc = ::fsync(fd);
  ::close(fd);
  GP_CHECK_MSG(rc == 0, "journal fsync of '" << journal_path()
                                             << "' failed");
}

void FeatureStore::put(std::uint64_t topology,
                       const core::ModelFeatures& features) {
  GPUPERF_FAULT_POINT("store.put");  // a full/dead volume: write throws
  const std::string payload = entry_body(topology, features);
  std::lock_guard<std::mutex> lock(mutex_);
  append_record(payload);
  index_[topology] = std::make_shared<core::ModelFeatures>(features);
}

std::size_t FeatureStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

void FeatureStore::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string contents;
  for (const auto& [topology, features] : index_)
    contents += encode_record(entry_body(topology, *features));

  const std::string tmp = journal_path() + ".tmp";
  const int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_TRUNC | O_CREAT | O_CLOEXEC, 0644);
  GP_CHECK_MSG(fd >= 0, "cannot open '" << tmp << "' for compaction");
  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      ::close(fd);
      GP_CHECK_MSG(false, "compaction write to '" << tmp << "' failed");
    }
    written += static_cast<std::size_t>(n);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  GP_CHECK_MSG(rc == 0, "compaction fsync of '" << tmp << "' failed");
  fs::rename(tmp, journal_path());
}

FeatureStore::Aggregate FeatureStore::aggregate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Aggregate out;
  for (const auto& [topology, features] : index_) {
    (void)topology;
    out.entries += 1;
    out.executed_instruction_sum += features->executed_instructions;
    out.trainable_param_sum += features->trainable_params;
  }
  return out;
}

}  // namespace gpuperf::registry
