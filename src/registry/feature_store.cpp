#include "registry/feature_store.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cnn/model_io.hpp"
#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/strings.hpp"
#include "registry/hash.hpp"

namespace fs = std::filesystem;

namespace gpuperf::registry {

namespace {

std::string full_precision(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// The checksummed payload: every line of the entry except the trailing
/// checksum line itself.
std::string entry_body(std::uint64_t topology,
                       const core::ModelFeatures& f) {
  std::ostringstream os;
  os << "gpuperf-features v1\n";
  os << "topology " << hex64(topology) << "\n";
  os << "model " << f.model_name << "\n";
  os << "executed_instructions " << f.executed_instructions << "\n";
  os << "trainable_params " << f.trainable_params << "\n";
  os << "macs " << f.macs << "\n";
  os << "neurons " << f.neurons << "\n";
  os << "weighted_layers " << f.weighted_layers << "\n";
  os << "dca_seconds " << full_precision(f.dca_seconds) << "\n";
  return os.str();
}

}  // namespace

FeatureStore::FeatureStore(std::string root) : root_(std::move(root)) {
  GP_CHECK_MSG(!root_.empty(), "feature store root must not be empty");
  fs::create_directories(root_);
}

std::string FeatureStore::entry_path(std::uint64_t topology) const {
  return (fs::path(root_) / (hex64(topology) + ".features")).string();
}

std::uint64_t FeatureStore::topology_hash(const cnn::Model& model) {
  return fnv1a64(cnn::serialize_model(model));
}

std::shared_ptr<const core::ModelFeatures> FeatureStore::get(
    std::uint64_t topology) const {
  GPUPERF_FAULT_POINT("store.get");  // a dead volume: read throws
  if (GPUPERF_FAULT_CORRUPT("store.get")) return nullptr;
  std::ifstream in(entry_path(topology), std::ios::binary);
  if (!in.good()) return nullptr;
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();

  // Split off the trailing checksum line and verify the body.
  const std::size_t marker = text.rfind("checksum ");
  if (marker == std::string::npos || (marker > 0 && text[marker - 1] != '\n'))
    return nullptr;
  const std::string body = text.substr(0, marker);
  const std::string checksum_line =
      std::string(trim(text.substr(marker)));

  auto out = std::make_shared<core::ModelFeatures>();
  std::uint64_t stored_topology = 0;
  std::uint64_t stored_checksum = 0;
  bool have_checksum = false;
  try {
    const auto parts = split_ws(checksum_line);
    if (parts.size() == 2 && parts[0] == "checksum") {
      stored_checksum = parse_hex64(parts[1]);
      have_checksum = true;
    }
    std::istringstream is(body);
    std::string line;
    if (!std::getline(is, line) || trim(line) != "gpuperf-features v1")
      return nullptr;
    while (std::getline(is, line)) {
      const auto kv = split_ws(line);
      if (kv.size() != 2) return nullptr;
      if (kv[0] == "topology") stored_topology = parse_hex64(kv[1]);
      else if (kv[0] == "model") out->model_name = kv[1];
      else if (kv[0] == "executed_instructions")
        out->executed_instructions = parse_int(kv[1]);
      else if (kv[0] == "trainable_params")
        out->trainable_params = parse_int(kv[1]);
      else if (kv[0] == "macs") out->macs = parse_int(kv[1]);
      else if (kv[0] == "neurons") out->neurons = parse_int(kv[1]);
      else if (kv[0] == "weighted_layers")
        out->weighted_layers = parse_int(kv[1]);
      else if (kv[0] == "dca_seconds") out->dca_seconds = parse_double(kv[1]);
      else
        return nullptr;
    }
  } catch (const CheckError&) {
    return nullptr;  // unparsable numbers → treat as a miss
  }
  if (!have_checksum || stored_checksum != fnv1a64(body)) return nullptr;
  if (stored_topology != topology) return nullptr;
  return out;
}

void FeatureStore::put(std::uint64_t topology,
                       const core::ModelFeatures& features) {
  GPUPERF_FAULT_POINT("store.put");  // a full/dead volume: write throws
  const std::string body = entry_body(topology, features);
  const fs::path final_path = entry_path(topology);
  const fs::path tmp = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GP_CHECK_MSG(out.good(),
                 "cannot open '" << tmp.string() << "' for writing");
    out << body << "checksum " << hex64(fnv1a64(body)) << "\n";
    out.flush();
    GP_CHECK_MSG(out.good(), "write to '" << tmp.string() << "' failed");
  }
  fs::rename(tmp, final_path);
}

std::size_t FeatureStore::size() const {
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(root_))
    if (entry.is_regular_file() &&
        ends_with(entry.path().filename().string(), ".features"))
      ++count;
  return count;
}

FeatureStore::Aggregate FeatureStore::aggregate() const {
  Aggregate out;
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (!entry.is_regular_file() || !ends_with(name, ".features"))
      continue;
    std::uint64_t topology = 0;
    try {
      topology = parse_hex64(name.substr(0, name.size() - 9));
    } catch (const CheckError&) {
      continue;  // stray file with a .features suffix
    }
    // get() re-validates checksum + topology, so a corrupt entry can
    // never poison the aggregate.
    if (const auto features = get(topology)) {
      out.entries += 1;
      out.executed_instruction_sum += features->executed_instructions;
      out.trainable_param_sum += features->trainable_params;
    }
  }
  return out;
}

}  // namespace gpuperf::registry
