#include "registry/hash.hpp"

#include "common/check.hpp"

namespace gpuperf::registry {

std::string hex64(std::uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex64(std::string_view s) {
  GP_CHECK_MSG(!s.empty() && s.size() <= 16, "bad hex64 '" << s << "'");
  std::uint64_t out = 0;
  for (const char c : s) {
    out <<= 4;
    if (c >= '0' && c <= '9') out |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      out |= static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      out |= static_cast<std::uint64_t>(c - 'A' + 10);
    else
      GP_CHECK_MSG(false, "bad hex digit in '" << s << "'");
  }
  return out;
}

}  // namespace gpuperf::registry
