#include "registry/manifest.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "registry/hash.hpp"

namespace gpuperf::registry {

namespace {

std::string full_precision(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// Model/device lists serialize as a comma join; the empty list (the
/// "use the defaults" convention) spells itself "default".
std::string list_field(const std::vector<std::string>& values) {
  return values.empty() ? "default" : join(values, ",");
}

std::vector<std::string> parse_list_field(const std::string& value) {
  if (value == "default") return {};
  return split(value, ',');
}

}  // namespace

std::string serialize_manifest(const Manifest& m) {
  std::ostringstream os;
  os << "gpuperf-bundle v" << m.schema_version << "\n";
  os << "regressor " << m.regressor_id << "\n";
  os << "feature_schema " << hex64(m.feature_schema_hash) << "\n";
  os << "features " << m.n_features << "\n";
  os << "seed " << m.seed << "\n";
  os << "train_models " << list_field(m.train_models) << "\n";
  os << "train_devices " << list_field(m.train_devices) << "\n";
  os << "cv_folds " << m.cv_folds << "\n";
  os << "cv_mape " << full_precision(m.cv_mape) << "\n";
  os << "cv_r2 " << full_precision(m.cv_r2) << "\n";
  os << "model_file " << m.model_file << "\n";
  os << "model_checksum " << hex64(m.model_checksum) << "\n";
  return os.str();
}

Manifest deserialize_manifest(const std::string& text,
                              const InputLimits& limits) {
  try {
    enforce_limit(text.size(), limits.max_manifest_bytes, "manifest bytes");
    std::istringstream is(text);
    std::string line;
    GP_CHECK_MSG(std::getline(is, line), "empty manifest");
    GP_CHECK_MSG(trim(line) == "gpuperf-bundle v1",
                 "bad manifest header: '" << line << "'");

    std::map<std::string, std::string> fields;
    while (std::getline(is, line)) {
      const std::string_view trimmed = trim(line);
      if (trimmed.empty()) continue;
      enforce_limit(fields.size() + 1, limits.max_manifest_fields,
                    "manifest fields");
      const std::size_t space = trimmed.find(' ');
      GP_CHECK_MSG(space != std::string_view::npos,
                   "bad manifest line: '" << line << "'");
      fields[std::string(trimmed.substr(0, space))] =
          std::string(trim(trimmed.substr(space + 1)));
    }

    const auto required = [&](const char* key) -> const std::string& {
      const auto it = fields.find(key);
      GP_CHECK_MSG(it != fields.end(), "manifest missing '" << key << "'");
      return it->second;
    };

    Manifest m;
    m.schema_version = 1;
    m.regressor_id = required("regressor");
    m.feature_schema_hash = parse_hex64(required("feature_schema"));
    m.n_features =
        static_cast<std::size_t>(parse_int(required("features")));
    m.seed = static_cast<std::uint64_t>(parse_int(required("seed")));
    m.train_models = parse_list_field(required("train_models"));
    m.train_devices = parse_list_field(required("train_devices"));
    m.cv_folds = static_cast<std::size_t>(parse_int(required("cv_folds")));
    m.cv_mape = parse_double(required("cv_mape"));
    m.cv_r2 = parse_double(required("cv_r2"));
    m.model_file = required("model_file");
    m.model_checksum = parse_hex64(required("model_checksum"));
    GP_CHECK_MSG(!m.regressor_id.empty(),
                 "manifest has empty regressor id");
    GP_CHECK_MSG(m.n_features >= 1, "manifest has no features");
    return m;
  } catch (const InputRejected&) {
    throw;
  } catch (const CheckError& e) {
    throw InputRejected(std::string("manifest: ") + e.what());
  } catch (const std::out_of_range& e) {
    throw InputRejected(std::string("manifest: truncated input (") +
                        e.what() + ")");
  } catch (const std::length_error& e) {
    throw InputRejected(std::string("manifest: oversized input (") +
                        e.what() + ")");
  }
}

std::uint64_t feature_schema_hash(const std::vector<std::string>& names) {
  return fnv1a64(join(names, ","));
}

}  // namespace gpuperf::registry
