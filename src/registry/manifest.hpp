// The bundle manifest: everything a consumer needs to decide whether a
// serialized model is loadable (schema hashes, checksums) and whether
// it is *good* (holdout CV metrics), without touching the model file.
//
// Line-oriented "key value" text after a versioned header, one field
// per line, order-insensitive on parse — human-diffable like the rest
// of the repo's file formats (docs/FILE_FORMATS.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/limits.hpp"

namespace gpuperf::registry {

struct Manifest {
  /// Bundle format revision, bumped on incompatible layout changes.
  int schema_version = 1;
  /// make_regressor id of the serialized model ("dt", "rf", ...).
  std::string regressor_id;
  /// fnv1a64 over the joined feature-name schema the model was trained
  /// on; a loader whose FeatureExtractor hashes differently must
  /// refuse the bundle.
  std::uint64_t feature_schema_hash = 0;
  std::size_t n_features = 0;
  /// Training configuration, for provenance and retraining.
  std::uint64_t seed = 42;
  std::vector<std::string> train_models;   // empty = the full Table I zoo
  std::vector<std::string> train_devices;  // empty = the paper's two GPUs
  /// Holdout cross-validation metrics (0 folds = no CV was run, so the
  /// publish gate cannot compare this bundle).
  std::size_t cv_folds = 0;
  double cv_mape = 0.0;
  double cv_r2 = 0.0;
  /// Serialized model: file name inside the bundle directory plus the
  /// fnv1a64 of its exact byte content.
  std::string model_file = "model.txt";
  std::uint64_t model_checksum = 0;
};

std::string serialize_manifest(const Manifest& manifest);

/// Throws InputRejected (a CheckError) on a bad header, a malformed
/// line, or a missing required field, and LimitExceeded when the text
/// blows the byte / field budget.
Manifest deserialize_manifest(
    const std::string& text,
    const InputLimits& limits = InputLimits::defaults());

/// Hash of a feature schema (the names joined with commas).
std::uint64_t feature_schema_hash(const std::vector<std::string>& names);

}  // namespace gpuperf::registry
