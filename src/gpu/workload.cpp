#include "gpu/workload.hpp"

#include "common/check.hpp"

namespace gpuperf::gpu {

std::vector<KernelWorkload> build_workloads(
    const ptx::CompiledModel& model,
    const ptx::ModelInstructionProfile& profile) {
  GP_CHECK(model.launches.size() == model.stats.size());
  GP_CHECK(profile.per_launch.size() == model.launches.size());
  GP_CHECK(profile.per_launch_class.size() == model.launches.size());

  std::vector<KernelWorkload> out;
  out.reserve(model.launches.size());
  for (std::size_t i = 0; i < model.launches.size(); ++i) {
    KernelWorkload w;
    w.kernel = model.launches[i].kernel;
    w.threads = model.launches[i].total_threads();
    w.thread_instructions = profile.per_launch[i];
    w.class_counts = profile.per_launch_class[i];
    w.bytes_read = model.stats[i].bytes_read;
    w.bytes_written = model.stats[i].bytes_written;
    w.flops = model.stats[i].flops;
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace gpuperf::gpu
