// nvprof-style profiler facade: compile a CNN, count its dynamic PTX
// instructions, simulate it on a device, and report the counters the
// paper's training phase collects (IPC, cycles, elapsed time) plus a
// model of the profiling wall-clock cost (Table IV's t_p).
#pragma once

#include <cstdint>
#include <string>

#include "cnn/model.hpp"
#include "gpu/simulator.hpp"
#include "ptx/counter.hpp"

namespace gpuperf::gpu {

struct ProfileResult {
  std::string model_name;
  std::string device_name;
  double ipc = 0.0;  // executed warp instructions per cycle per SM
  double total_cycles = 0.0;
  double elapsed_ms = 0.0;           // simulated GPU time of one pass
  std::int64_t thread_instructions = 0;
  double warp_instructions = 0.0;
  std::size_t kernel_count = 0;
  double memory_bound_fraction = 0.0;
  /// Activity-model power draw and energy of one inference pass.
  double average_power_w = 0.0;
  double energy_mj = 0.0;
  /// Modeled nvprof wall-clock time: per-kernel replay overhead plus
  /// tool startup (the naive approach's t_p in the DSE comparison).
  double profiling_wall_seconds = 0.0;
};

/// Per-layer latency attribution: every launch's simulated time summed
/// onto the model layer it implements.
struct LayerProfile {
  std::string layer;
  std::size_t launch_count = 0;
  double time_us = 0.0;
  std::int64_t thread_instructions = 0;
  double time_share = 0.0;  // fraction of whole-model time
};

class Profiler {
 public:
  /// noise_stddev models run-to-run counter variance; each
  /// (model, device) pair gets its own deterministic noise stream.
  explicit Profiler(double noise_stddev = 0.02,
                    std::uint64_t seed = 0x67707570ULL);

  /// Full pipeline: codegen -> instruction counting -> simulation.
  ProfileResult profile(const cnn::Model& model,
                        const DeviceSpec& device) const;

  /// Profile an already-compiled model (reuses codegen + DCA results
  /// across devices — the cross-platform sweep path).
  ProfileResult profile_compiled(
      const ptx::CompiledModel& compiled,
      const ptx::ModelInstructionProfile& instruction_profile,
      const DeviceSpec& device) const;

  /// Per-layer breakdown (noise-free), in first-appearance order.
  std::vector<LayerProfile> profile_layers(
      const ptx::CompiledModel& compiled,
      const ptx::ModelInstructionProfile& instruction_profile,
      const DeviceSpec& device) const;

 private:
  double noise_stddev_;
  std::uint64_t seed_;
  ptx::CodeGenerator codegen_;
  ptx::InstructionCounter counter_;
};

}  // namespace gpuperf::gpu
