// Built-in database of real NVIDIA GPGPU specifications.  The paper
// trains on the GTX 1080 Ti and V100S and times its DSE scenario over
// up to seven devices; the extra entries support cross-platform
// prediction experiments.
#pragma once

#include <string>
#include <vector>

#include "gpu/device_spec.hpp"

namespace gpuperf::gpu {

/// All known devices.
const std::vector<DeviceSpec>& device_database();

/// Lookup by short id ("gtx1080ti", "v100s", ...); GP_CHECK-fails on
/// unknown names.
const DeviceSpec& device(const std::string& name);

bool has_device(const std::string& name);

/// The two training devices of the paper's phase 1.
const std::vector<std::string>& training_devices();

/// The seven-device DSE sweep of Table IV (ordered).
const std::vector<std::string>& dse_devices();

}  // namespace gpuperf::gpu
