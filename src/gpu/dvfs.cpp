#include "gpu/dvfs.hpp"

#include "common/check.hpp"
#include "common/strings.hpp"

namespace gpuperf::gpu {

DeviceSpec scale_device(const DeviceSpec& base, const DvfsPoint& point) {
  GP_CHECK_MSG(point.core_scale > 0.1 && point.core_scale < 2.0,
               "implausible core scale " << point.core_scale);
  GP_CHECK_MSG(point.memory_scale > 0.1 && point.memory_scale < 2.0,
               "implausible memory scale " << point.memory_scale);
  DeviceSpec out = base;
  out.base_clock_mhz *= point.core_scale;
  out.boost_clock_mhz *= point.core_scale;
  out.memory_bandwidth_gbs *= point.memory_scale;
  out.name = base.name + "@c" + fixed(point.core_scale, 2) + "/m" +
             fixed(point.memory_scale, 2);
  out.full_name = base.full_name + " (DVFS c=" + fixed(point.core_scale, 2) +
                  ", m=" + fixed(point.memory_scale, 2) + ")";
  return out;
}

std::vector<DeviceSpec> dvfs_grid(const DeviceSpec& base,
                                  const std::vector<double>& core_scales,
                                  const std::vector<double>& memory_scales) {
  GP_CHECK(!core_scales.empty() && !memory_scales.empty());
  std::vector<DeviceSpec> out;
  out.reserve(core_scales.size() * memory_scales.size());
  for (double c : core_scales)
    for (double m : memory_scales)
      out.push_back(scale_device(base, DvfsPoint{c, m}));
  return out;
}

}  // namespace gpuperf::gpu
