#include "gpu/cycle_sim.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "gpu/simulator.hpp"

namespace gpuperf::gpu {

CycleLevelSimulator::CycleLevelSimulator(DeviceSpec spec,
                                         CycleSimParams params)
    : spec_(std::move(spec)), params_(params) {
  GP_CHECK(spec_.sm_count > 0 && spec_.cuda_cores > 0);
  GP_CHECK(params_.sample_instructions_per_warp >
           params_.warmup_instructions_per_warp);
}

namespace {

using ptx::OpClass;
using ptx::kOpClassCount;

/// Deterministic spread interleaving: emit classes proportionally to
/// their counts (Bresenham-style error accumulation), so the
/// representative warp trace mixes work the way the kernel does on
/// average instead of batching each class.
std::vector<OpClass> build_trace(
    const std::array<std::int64_t, kOpClassCount>& counts,
    std::int64_t length) {
  std::int64_t total = 0;
  for (std::int64_t c : counts) total += c;
  GP_CHECK(total > 0 && length > 0);

  std::array<double, kOpClassCount> rate{}, error{};
  for (int c = 0; c < kOpClassCount; ++c)
    rate[static_cast<std::size_t>(c)] =
        static_cast<double>(counts[static_cast<std::size_t>(c)]) /
        static_cast<double>(total);

  std::vector<OpClass> trace;
  trace.reserve(static_cast<std::size_t>(length));
  for (std::int64_t i = 0; i < length; ++i) {
    int best = 0;
    double best_err = -1.0;
    for (int c = 0; c < kOpClassCount; ++c) {
      error[static_cast<std::size_t>(c)] += rate[static_cast<std::size_t>(c)];
      if (error[static_cast<std::size_t>(c)] > best_err) {
        best_err = error[static_cast<std::size_t>(c)];
        best = c;
      }
    }
    error[static_cast<std::size_t>(best)] -= 1.0;
    trace.push_back(static_cast<OpClass>(best));
  }
  return trace;
}

struct WarpState {
  std::size_t pc = 0;
  std::int64_t ready_cycle = 0;
  bool done = false;
};

}  // namespace

CycleSimResult CycleLevelSimulator::simulate(
    const KernelWorkload& w) const {
  CycleSimResult out;
  const std::int64_t warps_total = w.warps();
  GP_CHECK(warps_total > 0);

  const double warp_instr_total =
      static_cast<double>(w.thread_instructions) / 32.0;
  out.warp_instructions = warp_instr_total;
  const std::int64_t per_warp = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::llround(warp_instr_total / static_cast<double>(warps_total))));

  // One SM's resident cohort; other SMs behave identically.
  const std::int64_t assigned =
      (warps_total + spec_.sm_count - 1) / spec_.sm_count;
  const std::int64_t resident =
      std::min<std::int64_t>(assigned, spec_.max_warps_per_sm);
  const std::int64_t batches = (assigned + resident - 1) / resident;

  const bool exact = per_warp <= params_.sample_instructions_per_warp;
  const std::int64_t trace_len =
      exact ? per_warp : params_.sample_instructions_per_warp;
  const std::vector<OpClass> trace = build_trace(w.class_counts, trace_len);

  // Per-cycle execution-unit capacities of one SM, in warp instructions.
  const double cores_per_sm = spec_.cores_per_sm();
  const double cap_alu = cores_per_sm / 32.0;
  const double cap_sfu = cores_per_sm / 128.0;
  const double cap_lsu = 1.0;
  const double issue_cap = 4.0;  // schedulers
  // This SM's share of DRAM bandwidth, bytes per core cycle.
  const double dram_per_cycle =
      effective_dram_bytes(spec_, w) > 0
          ? spec_.bytes_per_cycle() / spec_.sm_count
          : 0.0;
  const std::int64_t global_ops =
      w.class_counts[static_cast<std::size_t>(OpClass::kLoadGlobal)] +
      w.class_counts[static_cast<std::size_t>(OpClass::kStoreGlobal)];
  const double bytes_per_global_op =
      global_ops > 0 ? effective_dram_bytes(spec_, w) /
                           static_cast<double>(global_ops) * 32.0
                     : 0.0;  // per *warp* memory instruction

  auto latency_of = [&](OpClass c) -> std::int64_t {
    switch (c) {
      case OpClass::kLoadGlobal:
      case OpClass::kStoreGlobal:
        return params_.latency_global;
      case OpClass::kLoadShared:
      case OpClass::kStoreShared:
        return params_.latency_shared;
      case OpClass::kSfu:
        return params_.latency_sfu;
      case OpClass::kFma:
      case OpClass::kFloatAlu:
      case OpClass::kIntAlu:
        return params_.latency_alu;
      default:
        return params_.latency_move;
    }
  };
  auto is_memory = [](OpClass c) {
    return c == OpClass::kLoadGlobal || c == OpClass::kStoreGlobal ||
           c == OpClass::kLoadShared || c == OpClass::kStoreShared;
  };

  std::vector<WarpState> warp_states(
      static_cast<std::size_t>(resident));
  std::int64_t retired = 0;
  const std::int64_t retire_target =
      resident * static_cast<std::int64_t>(trace.size());
  const std::int64_t warmup_retired =
      exact ? 0 : resident * params_.warmup_instructions_per_warp;

  std::int64_t cycle = 0;
  std::int64_t warmup_end_cycle = 0;
  double alu_budget = 0.0, sfu_budget = 0.0, lsu_budget = 0.0;
  double dram_budget = 0.0;
  std::size_t rr = 0;  // round-robin pointer for age-based fairness

  constexpr std::int64_t kCycleLimit = 200'000'000;
  while (retired < retire_target) {
    GP_CHECK_MSG(cycle < kCycleLimit, "cycle simulator exceeded its limit");
    ++cycle;
    alu_budget = std::min(alu_budget + cap_alu, 4.0 * cap_alu);
    sfu_budget = std::min(sfu_budget + cap_sfu, 4.0 * cap_sfu);
    lsu_budget = std::min(lsu_budget + cap_lsu, 4.0 * cap_lsu);
    // The bucket must hold at least a few ops' worth of tokens or
    // coarse-grained ops could never issue.
    const double dram_cap = std::max(64.0 * std::max(dram_per_cycle, 1.0),
                                     4.0 * bytes_per_global_op);
    dram_budget = std::min(dram_budget + dram_per_cycle, dram_cap);

    double issued = 0.0;
    for (std::size_t k = 0; k < warp_states.size() && issued < issue_cap;
         ++k) {
      WarpState& warp = warp_states[(rr + k) % warp_states.size()];
      if (warp.done || warp.ready_cycle > cycle) continue;
      const OpClass c = trace[warp.pc];

      // Structural hazards: unit and DRAM availability.
      bool can_issue = true;
      switch (c) {
        case OpClass::kFma:
        case OpClass::kFloatAlu:
        case OpClass::kIntAlu:
          can_issue = alu_budget >= 1.0;
          break;
        case OpClass::kSfu:
          can_issue = sfu_budget >= 1.0;
          break;
        case OpClass::kLoadShared:
        case OpClass::kStoreShared:
          can_issue = lsu_budget >= 1.0;
          break;
        case OpClass::kLoadGlobal:
        case OpClass::kStoreGlobal:
          can_issue =
              lsu_budget >= 1.0 &&
              (bytes_per_global_op <= 0.0 ||
               dram_budget >= bytes_per_global_op);
          break;
        default:
          break;  // moves/control: issue slot only
      }
      if (!can_issue) continue;

      switch (c) {
        case OpClass::kFma:
        case OpClass::kFloatAlu:
        case OpClass::kIntAlu:
          alu_budget -= 1.0;
          break;
        case OpClass::kSfu:
          sfu_budget -= 1.0;
          break;
        case OpClass::kLoadShared:
        case OpClass::kStoreShared:
          lsu_budget -= 1.0;
          break;
        case OpClass::kLoadGlobal:
        case OpClass::kStoreGlobal:
          lsu_budget -= 1.0;
          dram_budget -= bytes_per_global_op;
          break;
        default:
          break;
      }
      issued += 1.0;

      // In-order warp: long-latency ops stall the warp (consumers are
      // assumed adjacent); short ops pipeline with II=1.
      warp.ready_cycle = is_memory(c) || c == OpClass::kSfu
                             ? cycle + latency_of(c)
                             : cycle + 1;
      ++warp.pc;
      ++retired;
      if (warp.pc == trace.size()) warp.done = true;
    }
    rr = (rr + 1) % warp_states.size();
    if (!exact && warmup_end_cycle == 0 && retired >= warmup_retired)
      warmup_end_cycle = cycle;
  }

  out.stepped_cycles = cycle;
  if (exact) {
    out.exact = true;
    out.cycles = static_cast<double>(cycle) * static_cast<double>(batches);
    out.steady_ipc =
        static_cast<double>(retire_target) / static_cast<double>(cycle);
  } else {
    const std::int64_t window_cycles = cycle - warmup_end_cycle;
    const std::int64_t window_instr = retire_target - warmup_retired;
    GP_CHECK(window_cycles > 0);
    out.steady_ipc = static_cast<double>(window_instr) /
                     static_cast<double>(window_cycles);
    out.cycles = warp_instr_total / (out.steady_ipc * spec_.sm_count);
  }
  out.time_us = out.cycles / (spec_.boost_clock_mhz * 1e6) * 1e6;
  return out;
}

CycleSimResult CycleLevelSimulator::simulate_model(
    const std::vector<KernelWorkload>& workloads) const {
  GP_CHECK(!workloads.empty());
  CycleSimResult total;
  total.exact = true;
  for (const KernelWorkload& w : workloads) {
    const CycleSimResult r = simulate(w);
    total.cycles += r.cycles;
    total.time_us += r.time_us;
    total.warp_instructions += r.warp_instructions;
    total.stepped_cycles += r.stepped_cycles;
    total.exact = total.exact && r.exact;
  }
  total.steady_ipc = total.warp_instructions /
                     (total.cycles * spec_.sm_count);
  return total;
}

}  // namespace gpuperf::gpu
