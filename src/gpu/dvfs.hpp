// Dynamic voltage/frequency scaling support — the paper's stated
// future work ("dynamic frequency scaling", following the authors'
// power-estimation line [9], [12]).  A scaled operating point is just
// a derived DeviceSpec: core clocks and memory bandwidth move, the
// silicon (SMs, cores, caches) stays fixed, so the whole estimation
// pipeline works unchanged on DVFS states.
#pragma once

#include <vector>

#include "gpu/device_spec.hpp"

namespace gpuperf::gpu {

/// One DVFS operating point as relative multipliers on the nominal
/// core clock and memory clock (bandwidth scales with memory clock).
struct DvfsPoint {
  double core_scale = 1.0;
  double memory_scale = 1.0;
};

/// Derive the spec at an operating point.  The device name gains a
/// "@cX.XX/mY.YY" suffix so rows stay distinguishable in datasets.
DeviceSpec scale_device(const DeviceSpec& base, const DvfsPoint& point);

/// A rectangular grid of operating points: every combination of the
/// given core and memory multipliers.
std::vector<DeviceSpec> dvfs_grid(const DeviceSpec& base,
                                  const std::vector<double>& core_scales,
                                  const std::vector<double>& memory_scales);

}  // namespace gpuperf::gpu
