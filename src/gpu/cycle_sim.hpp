// Cycle-level warp simulator — a small GPGPU-Sim-style model of one
// SM cohort: warp schedulers arbitrating over per-class execution-unit
// throughput, fixed instruction latencies, and a DRAM-bandwidth token
// bucket.  It exists for two reasons:
//
//  1. Validation: the fast analytical GpuSimulator's trends (bandwidth,
//     clock, occupancy) are cross-checked against an independent,
//     mechanistically different model.
//  2. The paper's speed argument: cycle-level simulation is orders of
//     magnitude slower than both the analytical model and the trained
//     estimator (bench/ablation_simulator_speed).
//
// Long kernels are sampled: the simulator steps a warm-up window plus a
// measurement window of instructions per warp and extrapolates the
// steady-state IPC to the full count — standard practice for
// cycle-accurate GPU simulation at scale.
#pragma once

#include <cstdint>

#include "gpu/device_spec.hpp"
#include "gpu/workload.hpp"

namespace gpuperf::gpu {

struct CycleSimParams {
  /// Instructions per warp stepped explicitly before extrapolating.
  std::int64_t sample_instructions_per_warp = 4096;
  std::int64_t warmup_instructions_per_warp = 256;
  /// Per-class pipeline latencies, in cycles.
  int latency_alu = 6;
  int latency_sfu = 20;
  int latency_shared = 24;
  int latency_global = 380;
  int latency_move = 4;
};

struct CycleSimResult {
  double cycles = 0.0;
  double time_us = 0.0;
  double warp_instructions = 0.0;
  /// Steady-state warp instructions per cycle per SM observed in the
  /// measurement window.
  double steady_ipc = 0.0;
  /// True when the kernel was short enough to simulate exactly.
  bool exact = false;
  /// Cycles the simulator actually stepped (cost indicator).
  std::int64_t stepped_cycles = 0;
};

class CycleLevelSimulator {
 public:
  explicit CycleLevelSimulator(DeviceSpec spec, CycleSimParams params = {});

  CycleSimResult simulate(const KernelWorkload& workload) const;

  /// Sum over a model's kernels.
  CycleSimResult simulate_model(
      const std::vector<KernelWorkload>& workloads) const;

 private:
  DeviceSpec spec_;
  CycleSimParams params_;
};

}  // namespace gpuperf::gpu
