#include "gpu/device_db.hpp"

#include "common/check.hpp"

namespace gpuperf::gpu {

const std::vector<DeviceSpec>& device_database() {
  static const std::vector<DeviceSpec> devices = [] {
    std::vector<DeviceSpec> d;

    DeviceSpec s;
    s.name = "gtx1080ti";
    s.cost_usd = 699;
    s.tdp_w = 250;
    s.full_name = "NVIDIA GeForce GTX 1080 Ti";
    s.architecture = "Pascal";
    s.sm_count = 28;
    s.cuda_cores = 3584;
    s.base_clock_mhz = 1481;
    s.boost_clock_mhz = 1582;
    s.memory_bandwidth_gbs = 484;
    s.memory_gb = 11;
    s.l2_cache_kb = 2816;
    s.shared_mem_per_sm_kb = 96;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "v100s";
    s.cost_usd = 5999;
    s.tdp_w = 250;
    s.full_name = "NVIDIA Tesla V100S PCIe 32GB";
    s.architecture = "Volta";
    s.sm_count = 80;
    s.cuda_cores = 5120;
    s.base_clock_mhz = 1245;
    s.boost_clock_mhz = 1597;
    s.memory_bandwidth_gbs = 1134;
    s.memory_gb = 32;
    s.l2_cache_kb = 6144;
    s.shared_mem_per_sm_kb = 96;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "quadrop1000";
    s.cost_usd = 349;
    s.tdp_w = 47;
    s.full_name = "NVIDIA Quadro P1000";
    s.architecture = "Pascal";
    s.sm_count = 5;
    s.cuda_cores = 640;
    s.base_clock_mhz = 1266;
    s.boost_clock_mhz = 1480;
    s.memory_bandwidth_gbs = 80;
    s.memory_gb = 4;
    s.l2_cache_kb = 1024;
    s.shared_mem_per_sm_kb = 96;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "teslat4";
    s.cost_usd = 2299;
    s.tdp_w = 70;
    s.full_name = "NVIDIA Tesla T4";
    s.architecture = "Turing";
    s.sm_count = 40;
    s.cuda_cores = 2560;
    s.base_clock_mhz = 585;
    s.boost_clock_mhz = 1590;
    s.memory_bandwidth_gbs = 320;
    s.memory_gb = 16;
    s.l2_cache_kb = 4096;
    s.shared_mem_per_sm_kb = 64;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "rtx2080ti";
    s.cost_usd = 999;
    s.tdp_w = 250;
    s.full_name = "NVIDIA GeForce RTX 2080 Ti";
    s.architecture = "Turing";
    s.sm_count = 68;
    s.cuda_cores = 4352;
    s.base_clock_mhz = 1350;
    s.boost_clock_mhz = 1545;
    s.memory_bandwidth_gbs = 616;
    s.memory_gb = 11;
    s.l2_cache_kb = 5632;
    s.shared_mem_per_sm_kb = 64;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "a100";
    s.cost_usd = 10000;
    s.tdp_w = 250;
    s.full_name = "NVIDIA A100 PCIe 40GB";
    s.architecture = "Ampere";
    s.sm_count = 108;
    s.cuda_cores = 6912;
    s.base_clock_mhz = 765;
    s.boost_clock_mhz = 1410;
    s.memory_bandwidth_gbs = 1555;
    s.memory_gb = 40;
    s.l2_cache_kb = 40960;
    s.shared_mem_per_sm_kb = 164;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "gtx1060";
    s.cost_usd = 249;
    s.tdp_w = 120;
    s.full_name = "NVIDIA GeForce GTX 1060 6GB";
    s.architecture = "Pascal";
    s.sm_count = 10;
    s.cuda_cores = 1280;
    s.base_clock_mhz = 1506;
    s.boost_clock_mhz = 1708;
    s.memory_bandwidth_gbs = 192;
    s.memory_gb = 6;
    s.l2_cache_kb = 1536;
    s.shared_mem_per_sm_kb = 96;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "titanv";
    s.cost_usd = 2999;
    s.tdp_w = 250;
    s.full_name = "NVIDIA TITAN V";
    s.architecture = "Volta";
    s.sm_count = 80;
    s.cuda_cores = 5120;
    s.base_clock_mhz = 1200;
    s.boost_clock_mhz = 1455;
    s.memory_bandwidth_gbs = 653;
    s.memory_gb = 12;
    s.l2_cache_kb = 4608;
    s.shared_mem_per_sm_kb = 96;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "rtx3090";
    s.cost_usd = 1499;
    s.tdp_w = 350;
    s.full_name = "NVIDIA GeForce RTX 3090";
    s.architecture = "Ampere";
    s.sm_count = 82;
    s.cuda_cores = 10496;
    s.base_clock_mhz = 1395;
    s.boost_clock_mhz = 1695;
    s.memory_bandwidth_gbs = 936;
    s.memory_gb = 24;
    s.l2_cache_kb = 6144;
    s.shared_mem_per_sm_kb = 128;
    d.push_back(s);

    s = DeviceSpec{};
    s.name = "jetsonxaviernx";
    s.cost_usd = 399;
    s.tdp_w = 15;
    s.full_name = "NVIDIA Jetson Xavier NX";
    s.architecture = "Volta";
    s.sm_count = 6;
    s.cuda_cores = 384;
    s.base_clock_mhz = 854;
    s.boost_clock_mhz = 1100;
    s.memory_bandwidth_gbs = 51;
    s.memory_gb = 8;
    s.l2_cache_kb = 512;
    s.shared_mem_per_sm_kb = 96;
    d.push_back(s);

    return d;
  }();
  return devices;
}

const DeviceSpec& device(const std::string& name) {
  for (const auto& d : device_database())
    if (d.name == name) return d;
  GP_CHECK_MSG(false, "unknown device '" << name << "'");
}

bool has_device(const std::string& name) {
  for (const auto& d : device_database())
    if (d.name == name) return true;
  return false;
}

const std::vector<std::string>& training_devices() {
  static const std::vector<std::string> names = {"gtx1080ti", "v100s"};
  return names;
}

const std::vector<std::string>& dse_devices() {
  static const std::vector<std::string> names = {
      "gtx1080ti", "v100s",  "quadrop1000", "teslat4",
      "rtx2080ti", "gtx1060", "titanv"};
  return names;
}

}  // namespace gpuperf::gpu
