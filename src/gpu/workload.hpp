// Kernel workload descriptors: the bridge from the PTX analysis (exact
// dynamic instruction counts and mixes) plus codegen's analytic DRAM
// traffic to the GPU simulator's cost model.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ptx/codegen.hpp"
#include "ptx/counter.hpp"

namespace gpuperf::gpu {

struct KernelWorkload {
  std::string kernel;
  std::int64_t threads = 0;
  std::int64_t thread_instructions = 0;
  std::array<std::int64_t, ptx::kOpClassCount> class_counts{};
  std::int64_t bytes_read = 0;
  std::int64_t bytes_written = 0;
  std::int64_t flops = 0;

  std::int64_t warps() const { return (threads + 31) / 32; }
  std::int64_t dram_bytes() const { return bytes_read + bytes_written; }
};

/// One workload per launch of the compiled model.
std::vector<KernelWorkload> build_workloads(
    const ptx::CompiledModel& model,
    const ptx::ModelInstructionProfile& profile);

}  // namespace gpuperf::gpu
