#include "gpu/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gpuperf::gpu {

GpuSimulator::GpuSimulator(DeviceSpec spec, SimParams params)
    : spec_(std::move(spec)), params_(params) {
  GP_CHECK(spec_.sm_count > 0 && spec_.cuda_cores > 0);
  GP_CHECK(spec_.boost_clock_mhz > 0 && spec_.memory_bandwidth_gbs > 0);
  GP_CHECK(params_.noise_stddev >= 0.0 && params_.noise_stddev < 0.5);
}

double effective_dram_bytes(const DeviceSpec& spec,
                            const KernelWorkload& w) {
  using ptx::OpClass;
  // Compulsory misses (each input/weight/output byte touched once)
  // plus the reuse traffic that spills past L2 — this is where the
  // L2-cache feature enters the ground truth.
  const double unique_bytes = static_cast<double>(w.dram_bytes());
  const double access_bytes =
      4.0 * static_cast<double>(
                w.class_counts[static_cast<std::size_t>(
                    OpClass::kLoadGlobal)] +
                w.class_counts[static_cast<std::size_t>(
                    OpClass::kStoreGlobal)]);
  const double reuse_bytes = std::max(0.0, access_bytes - unique_bytes);
  const double l2_bytes = spec.l2_cache_kb * 1024.0;
  const double l2_miss =
      std::clamp(0.5 * unique_bytes / l2_bytes, 0.02, 0.85);
  return unique_bytes + reuse_bytes * l2_miss;
}

KernelSimResult GpuSimulator::simulate(const KernelWorkload& w) const {
  using ptx::OpClass;
  const double cores_per_sm = spec_.cores_per_sm();

  // Issue cost per warp instruction, in SM-cycles.  A 32-lane warp op
  // occupies 32/cores_per_sm cycles of a full-width unit; SFUs are a
  // quarter-width pipe; moves and control dual-issue alongside math.
  auto class_cost = [&](OpClass c) -> double {
    switch (c) {
      case OpClass::kFma:
      case OpClass::kFloatAlu:
      case OpClass::kIntAlu:
        return 32.0 / cores_per_sm;
      case OpClass::kSfu:
        return 4.0 * 32.0 / cores_per_sm;
      case OpClass::kLoadShared:
      case OpClass::kStoreShared:
        return 32.0 / cores_per_sm;
      case OpClass::kLoadGlobal:
      case OpClass::kStoreGlobal:
        return 1.0;  // issue slot; DRAM time modeled separately
      case OpClass::kLoadParam:
      case OpClass::kMove:
      case OpClass::kControl:
        return 0.5;
    }
    return 1.0;
  };

  double issue_cycles_one_sm = 0.0;
  double warp_instructions = 0.0;
  for (int c = 0; c < ptx::kOpClassCount; ++c) {
    const double warp_count =
        static_cast<double>(w.class_counts[static_cast<std::size_t>(c)]) /
        32.0;
    warp_instructions += warp_count;
    issue_cycles_one_sm += warp_count * class_cost(static_cast<OpClass>(c));
  }
  const double compute_cycles =
      issue_cycles_one_sm / static_cast<double>(spec_.sm_count);

  const double memory_cycles =
      effective_dram_bytes(spec_, w) / spec_.bytes_per_cycle();

  // Latency hiding: below ~warps_for_full_occupancy warps per SM the
  // machine exposes memory/pipe latency.
  const double warps_per_sm =
      static_cast<double>(w.warps()) / spec_.sm_count;
  const double occupancy = std::clamp(
      warps_per_sm / params_.warps_for_full_occupancy, 0.30, 1.0);

  const double overhead_cycles =
      params_.launch_overhead_us * 1e-6 * spec_.boost_clock_mhz * 1e6;

  KernelSimResult result;
  result.memory_bound = memory_cycles > compute_cycles;
  result.cycles = std::max(compute_cycles, memory_cycles) / occupancy +
                  overhead_cycles;
  result.time_us =
      result.cycles / (spec_.boost_clock_mhz * 1e6) * 1e6;
  result.warp_instructions = warp_instructions;
  result.compute_utilization =
      std::clamp(compute_cycles / result.cycles, 0.0, 1.0);
  result.memory_utilization =
      std::clamp(memory_cycles / result.cycles, 0.0, 1.0);
  return result;
}

ModelSimResult GpuSimulator::simulate_model(
    const std::vector<KernelWorkload>& workloads) const {
  GP_CHECK_MSG(!workloads.empty(), "simulate_model on empty workload list");
  ModelSimResult out;
  std::size_t memory_bound = 0;
  double compute_util_cycles = 0.0;
  double memory_util_cycles = 0.0;
  for (const KernelWorkload& w : workloads) {
    const KernelSimResult k = simulate(w);
    out.total_cycles += k.cycles;
    out.warp_instructions += k.warp_instructions;
    out.thread_instructions += w.thread_instructions;
    compute_util_cycles += k.compute_utilization * k.cycles;
    memory_util_cycles += k.memory_utilization * k.cycles;
    if (k.memory_bound) ++memory_bound;
  }
  out.kernel_count = workloads.size();
  out.memory_bound_fraction =
      static_cast<double>(memory_bound) / workloads.size();

  if (params_.noise_stddev > 0.0) {
    Rng rng(params_.noise_seed);
    const double factor =
        std::max(0.5, rng.normal(1.0, params_.noise_stddev));
    out.total_cycles *= factor;
  }

  out.elapsed_ms = out.total_cycles / (spec_.boost_clock_mhz * 1e6) * 1e3;
  // Device-normalized IPC per SM (nvprof's "executed IPC" counter).
  out.ipc = out.warp_instructions /
            (out.total_cycles * static_cast<double>(spec_.sm_count));

  // Activity-based board power: an idle floor plus dynamic power split
  // between the compute pipes and the memory system, each scaling with
  // its time-weighted utilization.  Energy = P * t.
  const double compute_activity = compute_util_cycles / out.total_cycles;
  const double memory_activity = memory_util_cycles / out.total_cycles;
  out.average_power_w =
      spec_.tdp_w * (0.30 + 0.45 * compute_activity +
                     0.25 * memory_activity);
  out.energy_mj = out.average_power_w * out.elapsed_ms;
  return out;
}

}  // namespace gpuperf::gpu
