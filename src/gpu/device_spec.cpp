#include "gpu/device_spec.hpp"

#include "common/check.hpp"

namespace gpuperf::gpu {

int DeviceSpec::cores_per_sm() const {
  GP_CHECK(sm_count > 0);
  return cuda_cores / sm_count;
}

double DeviceSpec::fp32_tflops() const {
  return 2.0 * cuda_cores * boost_clock_mhz * 1e6 / 1e12;
}

double DeviceSpec::bytes_per_cycle() const {
  GP_CHECK(boost_clock_mhz > 0.0);
  return memory_bandwidth_gbs * 1e9 / (boost_clock_mhz * 1e6);
}

std::vector<double> DeviceSpec::features() const {
  // Memory bandwidth leads: it is the architecturally dominant factor
  // for CNN inference (and the paper's top Table III predictor).
  return {
      memory_bandwidth_gbs,
      static_cast<double>(cuda_cores),
      static_cast<double>(sm_count),
      base_clock_mhz,
      boost_clock_mhz,
      memory_gb,
      static_cast<double>(l2_cache_kb),
      static_cast<double>(registers_per_sm),
  };
}

const std::vector<std::string>& DeviceSpec::feature_names() {
  static const std::vector<std::string> names = {
      "mem_bandwidth_gbs", "cuda_cores",  "sm_count",
      "base_clock_mhz",    "boost_clock_mhz", "mem_size_gb",
      "l2_cache_kb",       "registers_per_sm",
  };
  return names;
}

}  // namespace gpuperf::gpu
