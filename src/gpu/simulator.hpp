// Analytical GPGPU performance simulator — the stand-in for executing
// CNNs on physical GPUs and profiling them with nvprof.
//
// Per kernel, issue-limited compute time is derived from the exact
// dynamic warp-instruction mix (per-class costs scale with the SM's
// lane count), memory time from the analytic DRAM traffic against the
// device bandwidth, and the kernel takes the maximum of the two
// (roofline overlap) corrected by an occupancy-based latency-hiding
// factor plus a fixed launch overhead.  Deterministic seeded noise
// models run-to-run profiling variance.
//
// This model intentionally makes measured IPC depend strongly on memory
// bandwidth (CNN inference is dominated by bandwidth-bound layers),
// which is the statistical structure behind the paper's Table III
// feature importances.
#pragma once

#include <cstdint>
#include <vector>

#include "gpu/device_spec.hpp"
#include "gpu/workload.hpp"

namespace gpuperf::gpu {

struct SimParams {
  /// Fixed per-kernel launch latency.
  double launch_overhead_us = 1.0;
  /// Relative stddev of multiplicative measurement noise (0 disables).
  double noise_stddev = 0.0;
  std::uint64_t noise_seed = 0;
  /// Warps per SM needed for full latency hiding.
  double warps_for_full_occupancy = 4.0;
};

struct KernelSimResult {
  double cycles = 0.0;
  double time_us = 0.0;
  double warp_instructions = 0.0;
  bool memory_bound = false;
  /// Pipeline utilizations (0..1) during this kernel, for the power
  /// model.
  double compute_utilization = 0.0;
  double memory_utilization = 0.0;
};

struct ModelSimResult {
  double total_cycles = 0.0;
  double elapsed_ms = 0.0;
  std::int64_t thread_instructions = 0;
  double warp_instructions = 0.0;
  /// Executed warp instructions per cycle per SM — the nvprof-style
  /// "IPC" the paper predicts.
  double ipc = 0.0;
  std::size_t kernel_count = 0;
  double memory_bound_fraction = 0.0;
  /// Activity-based power model (the authors' companion power-
  /// estimation work): board power from compute/memory utilization.
  double average_power_w = 0.0;
  double energy_mj = 0.0;
};

/// DRAM traffic model shared by the analytical and cycle-level
/// simulators: compulsory misses (each unique byte once) plus the
/// reuse traffic that spills past L2, with the spill fraction growing
/// with the kernel's working set relative to the device's L2.
double effective_dram_bytes(const DeviceSpec& spec,
                            const KernelWorkload& workload);

class GpuSimulator {
 public:
  GpuSimulator(DeviceSpec spec, SimParams params = {});

  const DeviceSpec& spec() const { return spec_; }

  /// Noise-free single-kernel simulation.
  KernelSimResult simulate(const KernelWorkload& workload) const;

  /// Whole-model simulation; noise (if configured) applies to the
  /// aggregate cycle count, mimicking run-to-run variance.
  ModelSimResult simulate_model(
      const std::vector<KernelWorkload>& workloads) const;

 private:
  DeviceSpec spec_;
  SimParams params_;
};

}  // namespace gpuperf::gpu
