#include "gpu/profiler.hpp"

#include <map>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace gpuperf::gpu {

Profiler::Profiler(double noise_stddev, std::uint64_t seed)
    : noise_stddev_(noise_stddev), seed_(seed) {}

ProfileResult Profiler::profile(const cnn::Model& model,
                                const DeviceSpec& device) const {
  const ptx::CompiledModel compiled = codegen_.compile(model);
  const ptx::ModelInstructionProfile instr = counter_.count(compiled);
  return profile_compiled(compiled, instr, device);
}

ProfileResult Profiler::profile_compiled(
    const ptx::CompiledModel& compiled,
    const ptx::ModelInstructionProfile& instruction_profile,
    const DeviceSpec& device) const {
  SimParams params;
  params.noise_stddev = noise_stddev_;
  params.noise_seed =
      seed_ ^ stable_hash(compiled.model_name + "@" + device.name);

  GpuSimulator sim(device, params);
  const std::vector<KernelWorkload> workloads =
      build_workloads(compiled, instruction_profile);
  const ModelSimResult result = sim.simulate_model(workloads);

  ProfileResult out;
  out.model_name = compiled.model_name;
  out.device_name = device.name;
  out.ipc = result.ipc;
  out.total_cycles = result.total_cycles;
  out.elapsed_ms = result.elapsed_ms;
  out.thread_instructions = result.thread_instructions;
  out.warp_instructions = result.warp_instructions;
  out.kernel_count = result.kernel_count;
  out.memory_bound_fraction = result.memory_bound_fraction;
  out.average_power_w = result.average_power_w;
  out.energy_mj = result.energy_mj;

  // nvprof replays every kernel several times to collect its counter
  // groups and pays a fixed tool startup; this dominates the naive
  // approach's cost in the paper's Table IV.
  constexpr double kStartupSeconds = 25.0;
  constexpr double kPerKernelReplaySeconds = 0.35;
  constexpr double kReplayPasses = 2.0;
  out.profiling_wall_seconds =
      kStartupSeconds +
      static_cast<double>(out.kernel_count) * kPerKernelReplaySeconds +
      kReplayPasses * result.elapsed_ms / 1e3;
  return out;
}

std::vector<LayerProfile> Profiler::profile_layers(
    const ptx::CompiledModel& compiled,
    const ptx::ModelInstructionProfile& instruction_profile,
    const DeviceSpec& device) const {
  GP_CHECK_MSG(compiled.sources.size() == compiled.launches.size(),
               "compiled model lacks launch source attribution");
  const GpuSimulator sim(device);  // noise-free
  const std::vector<KernelWorkload> workloads =
      build_workloads(compiled, instruction_profile);

  std::vector<LayerProfile> out;
  std::map<std::string, std::size_t> index_of;
  double total_time = 0.0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const KernelSimResult r = sim.simulate(workloads[i]);
    const std::string& source = compiled.sources[i];
    auto [it, inserted] = index_of.try_emplace(source, out.size());
    if (inserted) {
      LayerProfile lp;
      lp.layer = source;
      out.push_back(std::move(lp));
    }
    LayerProfile& lp = out[it->second];
    lp.launch_count += 1;
    lp.time_us += r.time_us;
    lp.thread_instructions += workloads[i].thread_instructions;
    total_time += r.time_us;
  }
  for (LayerProfile& lp : out)
    lp.time_share = total_time > 0 ? lp.time_us / total_time : 0.0;
  return out;
}

}  // namespace gpuperf::gpu
