// GPGPU architectural descriptions — the c1..cm device predictors of
// the paper's training vector (CUDA cores, frequency, memory bandwidth,
// L2 cache, registers, memory size).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpuperf::gpu {

struct DeviceSpec {
  std::string name;          // short id, e.g. "gtx1080ti"
  std::string full_name;     // "NVIDIA GeForce GTX 1080 Ti"
  std::string architecture;  // "Pascal"

  int sm_count = 0;
  int cuda_cores = 0;  // total FP32 lanes
  double base_clock_mhz = 0.0;
  double boost_clock_mhz = 0.0;
  double memory_bandwidth_gbs = 0.0;
  double memory_gb = 0.0;
  int l2_cache_kb = 0;
  int registers_per_sm = 65536;
  int shared_mem_per_sm_kb = 64;
  int max_warps_per_sm = 64;
  /// Board power limit, watts (drives the simulator's power model).
  double tdp_w = 250.0;
  /// Board price, USD (approximate launch MSRP) — the DSE constraint
  /// engine's cost axis.  0 means "not recorded"; check has_cost_usd()
  /// instead of trusting a magic zero.
  double cost_usd = 0.0;

  /// Optional-field accessors for the fleet-economics columns: a spec
  /// built by hand may leave them unset, and consumers (src/dse) must
  /// treat "unknown" differently from a legitimate value.
  bool has_tdp_w() const { return tdp_w > 0.0; }
  bool has_cost_usd() const { return cost_usd > 0.0; }

  int cores_per_sm() const;
  /// Peak FP32 throughput at boost clock, in TFLOP/s (2 ops per FMA).
  double fp32_tflops() const;
  /// DRAM bytes transferable per boost-clock cycle.
  double bytes_per_cycle() const;

  /// Feature vector used by the predictive model, aligned with
  /// feature_names().
  std::vector<double> features() const;
  static const std::vector<std::string>& feature_names();
};

}  // namespace gpuperf::gpu
