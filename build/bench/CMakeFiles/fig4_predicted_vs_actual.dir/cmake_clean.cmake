file(REMOVE_RECURSE
  "CMakeFiles/fig4_predicted_vs_actual.dir/fig4_predicted_vs_actual.cpp.o"
  "CMakeFiles/fig4_predicted_vs_actual.dir/fig4_predicted_vs_actual.cpp.o.d"
  "fig4_predicted_vs_actual"
  "fig4_predicted_vs_actual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_predicted_vs_actual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
