# Empty compiler generated dependencies file for fig4_predicted_vs_actual.
# This may be replaced when dependencies are built.
