# Empty compiler generated dependencies file for fig_power_extension.
# This may be replaced when dependencies are built.
