file(REMOVE_RECURSE
  "CMakeFiles/fig_power_extension.dir/fig_power_extension.cpp.o"
  "CMakeFiles/fig_power_extension.dir/fig_power_extension.cpp.o.d"
  "fig_power_extension"
  "fig_power_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_power_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
