file(REMOVE_RECURSE
  "CMakeFiles/micro_cnn.dir/micro_cnn.cpp.o"
  "CMakeFiles/micro_cnn.dir/micro_cnn.cpp.o.d"
  "micro_cnn"
  "micro_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
