
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_cnn.cpp" "bench/CMakeFiles/micro_cnn.dir/micro_cnn.cpp.o" "gcc" "bench/CMakeFiles/micro_cnn.dir/micro_cnn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_cnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
