# Empty compiler generated dependencies file for micro_cnn.
# This may be replaced when dependencies are built.
