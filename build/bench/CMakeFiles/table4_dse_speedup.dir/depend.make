# Empty dependencies file for table4_dse_speedup.
# This may be replaced when dependencies are built.
