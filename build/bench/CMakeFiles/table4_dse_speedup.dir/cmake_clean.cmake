file(REMOVE_RECURSE
  "CMakeFiles/table4_dse_speedup.dir/table4_dse_speedup.cpp.o"
  "CMakeFiles/table4_dse_speedup.dir/table4_dse_speedup.cpp.o.d"
  "table4_dse_speedup"
  "table4_dse_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_dse_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
