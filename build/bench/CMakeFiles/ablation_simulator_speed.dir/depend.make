# Empty dependencies file for ablation_simulator_speed.
# This may be replaced when dependencies are built.
