file(REMOVE_RECURSE
  "CMakeFiles/ablation_simulator_speed.dir/ablation_simulator_speed.cpp.o"
  "CMakeFiles/ablation_simulator_speed.dir/ablation_simulator_speed.cpp.o.d"
  "ablation_simulator_speed"
  "ablation_simulator_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simulator_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
