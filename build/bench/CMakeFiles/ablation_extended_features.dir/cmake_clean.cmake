file(REMOVE_RECURSE
  "CMakeFiles/ablation_extended_features.dir/ablation_extended_features.cpp.o"
  "CMakeFiles/ablation_extended_features.dir/ablation_extended_features.cpp.o.d"
  "ablation_extended_features"
  "ablation_extended_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extended_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
