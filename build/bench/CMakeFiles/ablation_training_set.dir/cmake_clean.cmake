file(REMOVE_RECURSE
  "CMakeFiles/ablation_training_set.dir/ablation_training_set.cpp.o"
  "CMakeFiles/ablation_training_set.dir/ablation_training_set.cpp.o.d"
  "ablation_training_set"
  "ablation_training_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_training_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
