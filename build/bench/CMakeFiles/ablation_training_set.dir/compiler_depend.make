# Empty compiler generated dependencies file for ablation_training_set.
# This may be replaced when dependencies are built.
