file(REMOVE_RECURSE
  "CMakeFiles/fig_batch_extension.dir/fig_batch_extension.cpp.o"
  "CMakeFiles/fig_batch_extension.dir/fig_batch_extension.cpp.o.d"
  "fig_batch_extension"
  "fig_batch_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_batch_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
