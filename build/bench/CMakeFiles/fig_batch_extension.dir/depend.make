# Empty dependencies file for fig_batch_extension.
# This may be replaced when dependencies are built.
