file(REMOVE_RECURSE
  "CMakeFiles/table3_feature_importance.dir/table3_feature_importance.cpp.o"
  "CMakeFiles/table3_feature_importance.dir/table3_feature_importance.cpp.o.d"
  "table3_feature_importance"
  "table3_feature_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_feature_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
