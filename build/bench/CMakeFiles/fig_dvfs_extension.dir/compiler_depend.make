# Empty compiler generated dependencies file for fig_dvfs_extension.
# This may be replaced when dependencies are built.
