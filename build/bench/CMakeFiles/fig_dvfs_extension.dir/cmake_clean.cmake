file(REMOVE_RECURSE
  "CMakeFiles/fig_dvfs_extension.dir/fig_dvfs_extension.cpp.o"
  "CMakeFiles/fig_dvfs_extension.dir/fig_dvfs_extension.cpp.o.d"
  "fig_dvfs_extension"
  "fig_dvfs_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_dvfs_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
