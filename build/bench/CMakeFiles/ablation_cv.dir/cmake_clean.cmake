file(REMOVE_RECURSE
  "CMakeFiles/ablation_cv.dir/ablation_cv.cpp.o"
  "CMakeFiles/ablation_cv.dir/ablation_cv.cpp.o.d"
  "ablation_cv"
  "ablation_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
