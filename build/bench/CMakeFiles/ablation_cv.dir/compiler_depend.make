# Empty compiler generated dependencies file for ablation_cv.
# This may be replaced when dependencies are built.
