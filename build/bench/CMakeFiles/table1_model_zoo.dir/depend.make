# Empty dependencies file for table1_model_zoo.
# This may be replaced when dependencies are built.
