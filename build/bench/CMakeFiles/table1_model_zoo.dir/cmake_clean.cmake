file(REMOVE_RECURSE
  "CMakeFiles/table1_model_zoo.dir/table1_model_zoo.cpp.o"
  "CMakeFiles/table1_model_zoo.dir/table1_model_zoo.cpp.o.d"
  "table1_model_zoo"
  "table1_model_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_model_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
