file(REMOVE_RECURSE
  "CMakeFiles/micro_dca.dir/micro_dca.cpp.o"
  "CMakeFiles/micro_dca.dir/micro_dca.cpp.o.d"
  "micro_dca"
  "micro_dca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
