# Empty compiler generated dependencies file for micro_dca.
# This may be replaced when dependencies are built.
