# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/gpuperf")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_models "/root/repo/build/tools/gpuperf" "models")
set_tests_properties(cli_models PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_devices "/root/repo/build/tools/gpuperf" "devices")
set_tests_properties(cli_devices PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/gpuperf" "analyze" "MobileNetV2" "--layers")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_ptx_library "/root/repo/build/tools/gpuperf" "ptx")
set_tests_properties(cli_ptx_library PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_ptx_model "/root/repo/build/tools/gpuperf" "ptx" "--model" "alexnet")
set_tests_properties(cli_ptx_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_model "/root/repo/build/tools/gpuperf" "analyze" "nonexistent")
set_tests_properties(cli_unknown_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_train "/root/repo/build/tools/gpuperf" "train" "--out" "cli_dt.txt")
set_tests_properties(cli_train PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_predict_tree "/root/repo/build/tools/gpuperf" "predict" "resnet50v2" "teslat4" "--tree" "cli_dt.txt")
set_tests_properties(cli_predict_tree PROPERTIES  DEPENDS "cli_train" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
