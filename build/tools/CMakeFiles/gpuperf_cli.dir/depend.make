# Empty dependencies file for gpuperf_cli.
# This may be replaced when dependencies are built.
