file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_cli.dir/gpuperf_cli.cpp.o"
  "CMakeFiles/gpuperf_cli.dir/gpuperf_cli.cpp.o.d"
  "gpuperf"
  "gpuperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
