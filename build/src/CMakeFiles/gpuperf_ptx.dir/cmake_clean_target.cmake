file(REMOVE_RECURSE
  "libgpuperf_ptx.a"
)
