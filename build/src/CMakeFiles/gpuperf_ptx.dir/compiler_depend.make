# Empty compiler generated dependencies file for gpuperf_ptx.
# This may be replaced when dependencies are built.
