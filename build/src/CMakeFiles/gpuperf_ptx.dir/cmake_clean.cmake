file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_ptx.dir/ptx/cfg.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/cfg.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/codegen.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/codegen.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/counter.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/counter.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/depgraph.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/depgraph.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/instruction.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/instruction.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/interpreter.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/interpreter.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/isa.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/isa.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/lexer.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/lexer.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/module.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/module.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/parser.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/parser.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/slicer.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/slicer.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/symexec.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/symexec.cpp.o.d"
  "CMakeFiles/gpuperf_ptx.dir/ptx/verifier.cpp.o"
  "CMakeFiles/gpuperf_ptx.dir/ptx/verifier.cpp.o.d"
  "libgpuperf_ptx.a"
  "libgpuperf_ptx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
