
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptx/cfg.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/cfg.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/cfg.cpp.o.d"
  "/root/repo/src/ptx/codegen.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/codegen.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/codegen.cpp.o.d"
  "/root/repo/src/ptx/counter.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/counter.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/counter.cpp.o.d"
  "/root/repo/src/ptx/depgraph.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/depgraph.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/depgraph.cpp.o.d"
  "/root/repo/src/ptx/instruction.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/instruction.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/instruction.cpp.o.d"
  "/root/repo/src/ptx/interpreter.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/interpreter.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/interpreter.cpp.o.d"
  "/root/repo/src/ptx/isa.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/isa.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/isa.cpp.o.d"
  "/root/repo/src/ptx/lexer.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/lexer.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/lexer.cpp.o.d"
  "/root/repo/src/ptx/module.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/module.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/module.cpp.o.d"
  "/root/repo/src/ptx/parser.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/parser.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/parser.cpp.o.d"
  "/root/repo/src/ptx/slicer.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/slicer.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/slicer.cpp.o.d"
  "/root/repo/src/ptx/symexec.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/symexec.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/symexec.cpp.o.d"
  "/root/repo/src/ptx/verifier.cpp" "src/CMakeFiles/gpuperf_ptx.dir/ptx/verifier.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ptx.dir/ptx/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_cnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
