
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/cross_validation.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/cross_validation.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/cross_validation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gradient_boosting.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/gradient_boosting.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/gradient_boosting.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/knn.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/knn.cpp.o.d"
  "/root/repo/src/ml/linear_regression.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/linear_regression.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/linear_regression.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/matrix.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/metrics.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/metrics.cpp.o.d"
  "/root/repo/src/ml/model_io.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/model_io.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/model_io.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/random_forest.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/random_forest.cpp.o.d"
  "/root/repo/src/ml/regressor.cpp" "src/CMakeFiles/gpuperf_ml.dir/ml/regressor.cpp.o" "gcc" "src/CMakeFiles/gpuperf_ml.dir/ml/regressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
