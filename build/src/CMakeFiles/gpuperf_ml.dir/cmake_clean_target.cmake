file(REMOVE_RECURSE
  "libgpuperf_ml.a"
)
