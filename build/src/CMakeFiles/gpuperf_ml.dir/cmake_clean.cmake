file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_ml.dir/ml/cross_validation.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/cross_validation.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/decision_tree.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/decision_tree.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/gradient_boosting.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/gradient_boosting.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/knn.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/knn.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/linear_regression.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/linear_regression.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/matrix.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/matrix.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/metrics.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/metrics.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/model_io.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/model_io.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/random_forest.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/random_forest.cpp.o.d"
  "CMakeFiles/gpuperf_ml.dir/ml/regressor.cpp.o"
  "CMakeFiles/gpuperf_ml.dir/ml/regressor.cpp.o.d"
  "libgpuperf_ml.a"
  "libgpuperf_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
