# Empty compiler generated dependencies file for gpuperf_ml.
# This may be replaced when dependencies are built.
