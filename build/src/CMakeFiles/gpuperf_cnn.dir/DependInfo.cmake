
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cnn/layer.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/layer.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/layer.cpp.o.d"
  "/root/repo/src/cnn/model.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/model.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/model.cpp.o.d"
  "/root/repo/src/cnn/model_io.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/model_io.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/model_io.cpp.o.d"
  "/root/repo/src/cnn/shape.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/shape.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/shape.cpp.o.d"
  "/root/repo/src/cnn/static_analyzer.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/static_analyzer.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/static_analyzer.cpp.o.d"
  "/root/repo/src/cnn/zoo.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo.cpp.o.d"
  "/root/repo/src/cnn/zoo_bit.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_bit.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_bit.cpp.o.d"
  "/root/repo/src/cnn/zoo_densenet.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_densenet.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_densenet.cpp.o.d"
  "/root/repo/src/cnn/zoo_efficientnet.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_efficientnet.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_efficientnet.cpp.o.d"
  "/root/repo/src/cnn/zoo_extended.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_extended.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_extended.cpp.o.d"
  "/root/repo/src/cnn/zoo_inception.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_inception.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_inception.cpp.o.d"
  "/root/repo/src/cnn/zoo_misc.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_misc.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_misc.cpp.o.d"
  "/root/repo/src/cnn/zoo_mobilenet.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_mobilenet.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_mobilenet.cpp.o.d"
  "/root/repo/src/cnn/zoo_nasnet.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_nasnet.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_nasnet.cpp.o.d"
  "/root/repo/src/cnn/zoo_resnet.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_resnet.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_resnet.cpp.o.d"
  "/root/repo/src/cnn/zoo_vgg.cpp" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_vgg.cpp.o" "gcc" "src/CMakeFiles/gpuperf_cnn.dir/cnn/zoo_vgg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
