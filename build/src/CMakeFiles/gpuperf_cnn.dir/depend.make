# Empty dependencies file for gpuperf_cnn.
# This may be replaced when dependencies are built.
