file(REMOVE_RECURSE
  "libgpuperf_cnn.a"
)
