# Empty dependencies file for gpuperf_gpu.
# This may be replaced when dependencies are built.
