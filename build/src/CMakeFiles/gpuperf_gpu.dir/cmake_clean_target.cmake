file(REMOVE_RECURSE
  "libgpuperf_gpu.a"
)
