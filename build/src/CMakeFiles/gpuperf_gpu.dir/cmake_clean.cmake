file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_gpu.dir/gpu/cycle_sim.cpp.o"
  "CMakeFiles/gpuperf_gpu.dir/gpu/cycle_sim.cpp.o.d"
  "CMakeFiles/gpuperf_gpu.dir/gpu/device_db.cpp.o"
  "CMakeFiles/gpuperf_gpu.dir/gpu/device_db.cpp.o.d"
  "CMakeFiles/gpuperf_gpu.dir/gpu/device_spec.cpp.o"
  "CMakeFiles/gpuperf_gpu.dir/gpu/device_spec.cpp.o.d"
  "CMakeFiles/gpuperf_gpu.dir/gpu/dvfs.cpp.o"
  "CMakeFiles/gpuperf_gpu.dir/gpu/dvfs.cpp.o.d"
  "CMakeFiles/gpuperf_gpu.dir/gpu/profiler.cpp.o"
  "CMakeFiles/gpuperf_gpu.dir/gpu/profiler.cpp.o.d"
  "CMakeFiles/gpuperf_gpu.dir/gpu/simulator.cpp.o"
  "CMakeFiles/gpuperf_gpu.dir/gpu/simulator.cpp.o.d"
  "CMakeFiles/gpuperf_gpu.dir/gpu/workload.cpp.o"
  "CMakeFiles/gpuperf_gpu.dir/gpu/workload.cpp.o.d"
  "libgpuperf_gpu.a"
  "libgpuperf_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
