
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cycle_sim.cpp" "src/CMakeFiles/gpuperf_gpu.dir/gpu/cycle_sim.cpp.o" "gcc" "src/CMakeFiles/gpuperf_gpu.dir/gpu/cycle_sim.cpp.o.d"
  "/root/repo/src/gpu/device_db.cpp" "src/CMakeFiles/gpuperf_gpu.dir/gpu/device_db.cpp.o" "gcc" "src/CMakeFiles/gpuperf_gpu.dir/gpu/device_db.cpp.o.d"
  "/root/repo/src/gpu/device_spec.cpp" "src/CMakeFiles/gpuperf_gpu.dir/gpu/device_spec.cpp.o" "gcc" "src/CMakeFiles/gpuperf_gpu.dir/gpu/device_spec.cpp.o.d"
  "/root/repo/src/gpu/dvfs.cpp" "src/CMakeFiles/gpuperf_gpu.dir/gpu/dvfs.cpp.o" "gcc" "src/CMakeFiles/gpuperf_gpu.dir/gpu/dvfs.cpp.o.d"
  "/root/repo/src/gpu/profiler.cpp" "src/CMakeFiles/gpuperf_gpu.dir/gpu/profiler.cpp.o" "gcc" "src/CMakeFiles/gpuperf_gpu.dir/gpu/profiler.cpp.o.d"
  "/root/repo/src/gpu/simulator.cpp" "src/CMakeFiles/gpuperf_gpu.dir/gpu/simulator.cpp.o" "gcc" "src/CMakeFiles/gpuperf_gpu.dir/gpu/simulator.cpp.o.d"
  "/root/repo/src/gpu/workload.cpp" "src/CMakeFiles/gpuperf_gpu.dir/gpu/workload.cpp.o" "gcc" "src/CMakeFiles/gpuperf_gpu.dir/gpu/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_cnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ptx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
