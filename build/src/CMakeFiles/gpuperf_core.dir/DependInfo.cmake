
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset_builder.cpp" "src/CMakeFiles/gpuperf_core.dir/core/dataset_builder.cpp.o" "gcc" "src/CMakeFiles/gpuperf_core.dir/core/dataset_builder.cpp.o.d"
  "/root/repo/src/core/dse.cpp" "src/CMakeFiles/gpuperf_core.dir/core/dse.cpp.o" "gcc" "src/CMakeFiles/gpuperf_core.dir/core/dse.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/CMakeFiles/gpuperf_core.dir/core/estimator.cpp.o" "gcc" "src/CMakeFiles/gpuperf_core.dir/core/estimator.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/CMakeFiles/gpuperf_core.dir/core/features.cpp.o" "gcc" "src/CMakeFiles/gpuperf_core.dir/core/features.cpp.o.d"
  "/root/repo/src/core/model_selection.cpp" "src/CMakeFiles/gpuperf_core.dir/core/model_selection.cpp.o" "gcc" "src/CMakeFiles/gpuperf_core.dir/core/model_selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_cnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
