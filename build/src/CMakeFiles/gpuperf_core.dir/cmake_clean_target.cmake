file(REMOVE_RECURSE
  "libgpuperf_core.a"
)
