# Empty compiler generated dependencies file for gpuperf_core.
# This may be replaced when dependencies are built.
