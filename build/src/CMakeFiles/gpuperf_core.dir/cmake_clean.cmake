file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_core.dir/core/dataset_builder.cpp.o"
  "CMakeFiles/gpuperf_core.dir/core/dataset_builder.cpp.o.d"
  "CMakeFiles/gpuperf_core.dir/core/dse.cpp.o"
  "CMakeFiles/gpuperf_core.dir/core/dse.cpp.o.d"
  "CMakeFiles/gpuperf_core.dir/core/estimator.cpp.o"
  "CMakeFiles/gpuperf_core.dir/core/estimator.cpp.o.d"
  "CMakeFiles/gpuperf_core.dir/core/features.cpp.o"
  "CMakeFiles/gpuperf_core.dir/core/features.cpp.o.d"
  "CMakeFiles/gpuperf_core.dir/core/model_selection.cpp.o"
  "CMakeFiles/gpuperf_core.dir/core/model_selection.cpp.o.d"
  "libgpuperf_core.a"
  "libgpuperf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
