file(REMOVE_RECURSE
  "libgpuperf_common.a"
)
