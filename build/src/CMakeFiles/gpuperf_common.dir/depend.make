# Empty dependencies file for gpuperf_common.
# This may be replaced when dependencies are built.
