file(REMOVE_RECURSE
  "CMakeFiles/gpuperf_common.dir/common/csv.cpp.o"
  "CMakeFiles/gpuperf_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/gpuperf_common.dir/common/log.cpp.o"
  "CMakeFiles/gpuperf_common.dir/common/log.cpp.o.d"
  "CMakeFiles/gpuperf_common.dir/common/rng.cpp.o"
  "CMakeFiles/gpuperf_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/gpuperf_common.dir/common/stopwatch.cpp.o"
  "CMakeFiles/gpuperf_common.dir/common/stopwatch.cpp.o.d"
  "CMakeFiles/gpuperf_common.dir/common/strings.cpp.o"
  "CMakeFiles/gpuperf_common.dir/common/strings.cpp.o.d"
  "CMakeFiles/gpuperf_common.dir/common/table.cpp.o"
  "CMakeFiles/gpuperf_common.dir/common/table.cpp.o.d"
  "CMakeFiles/gpuperf_common.dir/common/thread_pool.cpp.o"
  "CMakeFiles/gpuperf_common.dir/common/thread_pool.cpp.o.d"
  "libgpuperf_common.a"
  "libgpuperf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpuperf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
