file(REMOVE_RECURSE
  "CMakeFiles/zoo_report.dir/zoo_report.cpp.o"
  "CMakeFiles/zoo_report.dir/zoo_report.cpp.o.d"
  "zoo_report"
  "zoo_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
