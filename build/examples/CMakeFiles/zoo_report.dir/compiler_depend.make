# Empty compiler generated dependencies file for zoo_report.
# This may be replaced when dependencies are built.
