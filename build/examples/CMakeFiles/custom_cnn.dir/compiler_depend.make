# Empty compiler generated dependencies file for custom_cnn.
# This may be replaced when dependencies are built.
