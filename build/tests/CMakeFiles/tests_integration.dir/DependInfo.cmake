
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/dca_property_test.cpp" "tests/CMakeFiles/tests_integration.dir/integration/dca_property_test.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/dca_property_test.cpp.o.d"
  "/root/repo/tests/integration/parser_robustness_test.cpp" "tests/CMakeFiles/tests_integration.dir/integration/parser_robustness_test.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/parser_robustness_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/tests_integration.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/tests_integration.dir/integration/pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_cnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
