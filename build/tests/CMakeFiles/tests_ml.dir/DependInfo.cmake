
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/cross_validation_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/cross_validation_test.cpp.o.d"
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/decision_tree_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/decision_tree_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/decision_tree_test.cpp.o.d"
  "/root/repo/tests/ml/gradient_boosting_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/gradient_boosting_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/gradient_boosting_test.cpp.o.d"
  "/root/repo/tests/ml/knn_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/knn_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/knn_test.cpp.o.d"
  "/root/repo/tests/ml/linear_regression_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/linear_regression_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/linear_regression_test.cpp.o.d"
  "/root/repo/tests/ml/matrix_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/matrix_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/model_io_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/model_io_test.cpp.o.d"
  "/root/repo/tests/ml/random_forest_test.cpp" "tests/CMakeFiles/tests_ml.dir/ml/random_forest_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ml.dir/ml/random_forest_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_cnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
