file(REMOVE_RECURSE
  "CMakeFiles/tests_ml.dir/ml/cross_validation_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/cross_validation_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/dataset_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/decision_tree_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/decision_tree_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/gradient_boosting_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/gradient_boosting_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/knn_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/knn_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/linear_regression_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/linear_regression_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/matrix_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/matrix_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/metrics_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/model_io_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/model_io_test.cpp.o.d"
  "CMakeFiles/tests_ml.dir/ml/random_forest_test.cpp.o"
  "CMakeFiles/tests_ml.dir/ml/random_forest_test.cpp.o.d"
  "tests_ml"
  "tests_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
