# Empty dependencies file for tests_cnn.
# This may be replaced when dependencies are built.
