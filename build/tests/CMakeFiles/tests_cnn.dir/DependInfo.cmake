
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cnn/layer_test.cpp" "tests/CMakeFiles/tests_cnn.dir/cnn/layer_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cnn.dir/cnn/layer_test.cpp.o.d"
  "/root/repo/tests/cnn/model_io_test.cpp" "tests/CMakeFiles/tests_cnn.dir/cnn/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cnn.dir/cnn/model_io_test.cpp.o.d"
  "/root/repo/tests/cnn/model_test.cpp" "tests/CMakeFiles/tests_cnn.dir/cnn/model_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cnn.dir/cnn/model_test.cpp.o.d"
  "/root/repo/tests/cnn/shape_test.cpp" "tests/CMakeFiles/tests_cnn.dir/cnn/shape_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cnn.dir/cnn/shape_test.cpp.o.d"
  "/root/repo/tests/cnn/static_analyzer_test.cpp" "tests/CMakeFiles/tests_cnn.dir/cnn/static_analyzer_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cnn.dir/cnn/static_analyzer_test.cpp.o.d"
  "/root/repo/tests/cnn/zoo_neurons_test.cpp" "tests/CMakeFiles/tests_cnn.dir/cnn/zoo_neurons_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cnn.dir/cnn/zoo_neurons_test.cpp.o.d"
  "/root/repo/tests/cnn/zoo_test.cpp" "tests/CMakeFiles/tests_cnn.dir/cnn/zoo_test.cpp.o" "gcc" "tests/CMakeFiles/tests_cnn.dir/cnn/zoo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_cnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
