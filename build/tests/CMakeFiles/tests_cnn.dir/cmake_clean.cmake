file(REMOVE_RECURSE
  "CMakeFiles/tests_cnn.dir/cnn/layer_test.cpp.o"
  "CMakeFiles/tests_cnn.dir/cnn/layer_test.cpp.o.d"
  "CMakeFiles/tests_cnn.dir/cnn/model_io_test.cpp.o"
  "CMakeFiles/tests_cnn.dir/cnn/model_io_test.cpp.o.d"
  "CMakeFiles/tests_cnn.dir/cnn/model_test.cpp.o"
  "CMakeFiles/tests_cnn.dir/cnn/model_test.cpp.o.d"
  "CMakeFiles/tests_cnn.dir/cnn/shape_test.cpp.o"
  "CMakeFiles/tests_cnn.dir/cnn/shape_test.cpp.o.d"
  "CMakeFiles/tests_cnn.dir/cnn/static_analyzer_test.cpp.o"
  "CMakeFiles/tests_cnn.dir/cnn/static_analyzer_test.cpp.o.d"
  "CMakeFiles/tests_cnn.dir/cnn/zoo_neurons_test.cpp.o"
  "CMakeFiles/tests_cnn.dir/cnn/zoo_neurons_test.cpp.o.d"
  "CMakeFiles/tests_cnn.dir/cnn/zoo_test.cpp.o"
  "CMakeFiles/tests_cnn.dir/cnn/zoo_test.cpp.o.d"
  "tests_cnn"
  "tests_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
