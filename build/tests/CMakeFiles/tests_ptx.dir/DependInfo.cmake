
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ptx/cfg_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/cfg_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/cfg_test.cpp.o.d"
  "/root/repo/tests/ptx/codegen_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/codegen_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/codegen_test.cpp.o.d"
  "/root/repo/tests/ptx/counter_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/counter_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/counter_test.cpp.o.d"
  "/root/repo/tests/ptx/depgraph_slicer_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/depgraph_slicer_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/depgraph_slicer_test.cpp.o.d"
  "/root/repo/tests/ptx/instruction_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/instruction_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/instruction_test.cpp.o.d"
  "/root/repo/tests/ptx/interpreter_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/interpreter_test.cpp.o.d"
  "/root/repo/tests/ptx/isa_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/isa_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/isa_test.cpp.o.d"
  "/root/repo/tests/ptx/lexer_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/lexer_test.cpp.o.d"
  "/root/repo/tests/ptx/parser_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/parser_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/parser_test.cpp.o.d"
  "/root/repo/tests/ptx/symexec_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/symexec_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/symexec_test.cpp.o.d"
  "/root/repo/tests/ptx/verifier_test.cpp" "tests/CMakeFiles/tests_ptx.dir/ptx/verifier_test.cpp.o" "gcc" "tests/CMakeFiles/tests_ptx.dir/ptx/verifier_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpuperf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_ptx.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_cnn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gpuperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
