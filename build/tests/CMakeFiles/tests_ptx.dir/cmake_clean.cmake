file(REMOVE_RECURSE
  "CMakeFiles/tests_ptx.dir/ptx/cfg_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/cfg_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/codegen_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/codegen_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/counter_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/counter_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/depgraph_slicer_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/depgraph_slicer_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/instruction_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/instruction_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/interpreter_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/interpreter_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/isa_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/isa_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/lexer_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/lexer_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/parser_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/parser_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/symexec_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/symexec_test.cpp.o.d"
  "CMakeFiles/tests_ptx.dir/ptx/verifier_test.cpp.o"
  "CMakeFiles/tests_ptx.dir/ptx/verifier_test.cpp.o.d"
  "tests_ptx"
  "tests_ptx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
