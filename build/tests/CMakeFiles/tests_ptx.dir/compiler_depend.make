# Empty compiler generated dependencies file for tests_ptx.
# This may be replaced when dependencies are built.
