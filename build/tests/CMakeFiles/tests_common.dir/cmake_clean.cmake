file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/common/csv_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/csv_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/log_stopwatch_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/log_stopwatch_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/rng_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/strings_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/strings_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/table_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/table_test.cpp.o.d"
  "CMakeFiles/tests_common.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/tests_common.dir/common/thread_pool_test.cpp.o.d"
  "tests_common"
  "tests_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
