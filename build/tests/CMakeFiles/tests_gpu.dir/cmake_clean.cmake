file(REMOVE_RECURSE
  "CMakeFiles/tests_gpu.dir/gpu/cycle_sim_test.cpp.o"
  "CMakeFiles/tests_gpu.dir/gpu/cycle_sim_test.cpp.o.d"
  "CMakeFiles/tests_gpu.dir/gpu/device_test.cpp.o"
  "CMakeFiles/tests_gpu.dir/gpu/device_test.cpp.o.d"
  "CMakeFiles/tests_gpu.dir/gpu/dvfs_test.cpp.o"
  "CMakeFiles/tests_gpu.dir/gpu/dvfs_test.cpp.o.d"
  "CMakeFiles/tests_gpu.dir/gpu/profiler_test.cpp.o"
  "CMakeFiles/tests_gpu.dir/gpu/profiler_test.cpp.o.d"
  "CMakeFiles/tests_gpu.dir/gpu/simulator_test.cpp.o"
  "CMakeFiles/tests_gpu.dir/gpu/simulator_test.cpp.o.d"
  "CMakeFiles/tests_gpu.dir/gpu/workload_test.cpp.o"
  "CMakeFiles/tests_gpu.dir/gpu/workload_test.cpp.o.d"
  "tests_gpu"
  "tests_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
