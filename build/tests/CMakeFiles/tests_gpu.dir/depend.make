# Empty dependencies file for tests_gpu.
# This may be replaced when dependencies are built.
