file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/dataset_builder_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/dataset_builder_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/dse_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/dse_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/estimator_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/estimator_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/features_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/features_test.cpp.o.d"
  "CMakeFiles/tests_core.dir/core/model_selection_test.cpp.o"
  "CMakeFiles/tests_core.dir/core/model_selection_test.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
