# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tests_common "/root/repo/build/tests/tests_common")
set_tests_properties(tests_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;gpuperf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_ml "/root/repo/build/tests/tests_ml")
set_tests_properties(tests_ml PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;gpuperf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_cnn "/root/repo/build/tests/tests_cnn")
set_tests_properties(tests_cnn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;31;gpuperf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_ptx "/root/repo/build/tests/tests_ptx")
set_tests_properties(tests_ptx PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;41;gpuperf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_gpu "/root/repo/build/tests/tests_gpu")
set_tests_properties(tests_gpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;55;gpuperf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_integration "/root/repo/build/tests/tests_integration")
set_tests_properties(tests_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;64;gpuperf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tests_core "/root/repo/build/tests/tests_core")
set_tests_properties(tests_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;70;gpuperf_test;/root/repo/tests/CMakeLists.txt;0;")
